"""Variable orders on facts derived from instance decompositions.

The OBDD results of Section 6 rely on variable orders that follow a tree or
path decomposition of the instance: facts are enumerated in the order of the
first bag (in a pre-order traversal, resp. left-to-right along the path) whose
elements cover the fact.  Under such an order, the number of "live" facts
whose status the OBDD must remember at any prefix is governed by the
decomposition width, which is what yields polynomial-size OBDDs on bounded
treewidth (Theorem 6.5) and constant-width OBDDs on bounded pathwidth
(Theorem 6.7).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.data.gaifman import gaifman_graph
from repro.data.instance import Fact, Instance
from repro.errors import CompilationError
from repro.structure.path_decomposition import PathDecomposition, path_decomposition
from repro.structure.tree_decomposition import TreeDecomposition, tree_decomposition


def fact_order_from_tree_decomposition(
    instance: Instance, decomposition: TreeDecomposition | None = None
) -> list[Fact]:
    """Facts ordered by the pre-order position of their topmost covering bag."""
    if decomposition is None:
        decomposition = tree_decomposition(gaifman_graph(instance))
    order = decomposition.topological_order()
    position = {node: index for index, node in enumerate(order)}
    placement: dict[Fact, int] = {}
    for f in instance:
        elements = set(f.elements())
        covering = [node for node in order if elements <= decomposition.bags[node]]
        if not covering:
            raise CompilationError(f"no bag covers the fact {f}")
        placement[f] = min(position[node] for node in covering)
    return sorted(instance.facts, key=lambda f: (placement[f], _fact_key(f)))


def fact_order_from_path_decomposition(
    instance: Instance, decomposition: PathDecomposition | None = None
) -> list[Fact]:
    """Facts ordered by the first path bag that covers them (left to right)."""
    if decomposition is None:
        decomposition = path_decomposition(gaifman_graph(instance))
    placement: dict[Fact, int] = {}
    for f in instance:
        elements = set(f.elements())
        covering = [index for index, bag in enumerate(decomposition.bags) if elements <= bag]
        if not covering:
            raise CompilationError(f"no bag covers the fact {f}")
        placement[f] = min(covering)
    return sorted(instance.facts, key=lambda f: (placement[f], _fact_key(f)))


def default_fact_order(
    instance: Instance,
    path: PathDecomposition | None = None,
    tree: TreeDecomposition | None = None,
) -> list[Fact]:
    """The library's default order: along a path decomposition when it is thin,
    otherwise along a tree decomposition.

    Precomputed decompositions may be passed to avoid recomputing them; this
    is how :class:`repro.engine.CompilationEngine` reuses its cached
    structural artifacts.
    """
    if path is None or tree is None:
        graph = gaifman_graph(instance)
        if path is None:
            path = path_decomposition(graph)
        if tree is None:
            tree = tree_decomposition(graph)
    if path.width <= max(tree.width * 2, tree.width + 1):
        return fact_order_from_path_decomposition(instance, path)
    return fact_order_from_tree_decomposition(instance, tree)


def element_major_order(instance: Instance, element_order: Sequence[Any]) -> list[Fact]:
    """Facts ordered by the last of their elements in a given element order.

    This is the order used by the inversion-free / unfolding experiments,
    where the element order comes from the prefix structure of the unfolded
    domain (Section 9)."""
    rank = {element: index for index, element in enumerate(element_order)}
    missing = [f for f in instance if any(a not in rank for a in f.elements())]
    if missing:
        raise CompilationError("element order does not cover all fact elements")
    return sorted(
        instance.facts,
        key=lambda f: (max(rank[a] for a in f.elements()), _fact_key(f)),
    )


def _fact_key(f: Fact) -> tuple:
    return (f.relation, tuple(repr(a) for a in f.arguments))
