"""Knowledge compilation of lineages into OBDDs (Theorems 6.5 and 6.7).

The compilation pipeline is:

1. compute the lineage of the query on the instance (a monotone DNF of
   matches, or an arbitrary lineage circuit);
2. derive a variable order on facts from a tree or path decomposition of the
   instance (:mod:`repro.provenance.variable_orders`);
3. compile with OBDD ``apply`` under that order.

On bounded-treewidth instances this yields polynomial-size OBDDs; on
bounded-pathwidth instances the OBDD width is bounded by a constant depending
only on the query and the width — these are the measurable claims of
Theorems 6.5 and 6.7 that the benchmark harness charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.booleans.circuit import BooleanCircuit
from repro.booleans.dnnf import DNNF, dnnf_from_obdd
from repro.booleans.obdd import OBDD, SweepResult
from repro.data.instance import Fact, Instance
from repro.errors import CompilationError
from repro.provenance.lineage import MonotoneDNFLineage, lineage_of
from repro.provenance.variable_orders import (
    default_fact_order,
    fact_order_from_path_decomposition,
    fact_order_from_tree_decomposition,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries


@dataclass
class CompiledOBDD:
    """The result of compiling a lineage into an OBDD.

    Measurements are served by the fused sweep kernel of
    :meth:`repro.booleans.obdd.OBDD.sweep`: one reverse-topological pass
    computes size, width, and model count together, and the result is cached
    on the compiled object (the diagram is immutable), so ``size`` and
    ``width`` cost one shared pass instead of one walk each.
    """

    manager: OBDD
    root: int
    order: tuple[Fact, ...]
    _stats: "SweepResult | None" = field(default=None, repr=False, compare=False)

    def stats(self) -> "SweepResult":
        """Size, width, and model count from one (cached) fused sweep."""
        if self._stats is None:
            self._stats = self.manager.sweep(self.root, model_count=True, width=True)
        return self._stats

    @property
    def size(self) -> int:
        return self.stats().size

    @property
    def width(self) -> int:
        return self.stats().width

    def model_count(self) -> int:
        """Satisfying assignments over the full fact order."""
        return self.stats().model_count

    def probability(self, probabilities, exact: bool = True):
        """Probability under independent facts: exact :class:`~fractions.Fraction`
        by default, the float fast path (with exact fallback) when
        ``exact=False``."""
        return self.manager.sweep(self.root, probabilities, exact=exact).probability

    def evaluate(self, valuation) -> bool:
        return self.manager.evaluate(self.root, valuation)

    def to_dnnf(self) -> DNNF:
        return dnnf_from_obdd(self.manager, self.root)

    def to_columnar(self):
        """The artifact as a :class:`repro.booleans.columnar.ColumnarOBDD`.

        The columnar form is the shippable one: flat int64 columns that pack
        into a single buffer (shared-memory segments, mmap files) and sweep
        vectorized; the conversion is lossless (:meth:`from_columnar`).
        """
        return self.manager.to_columnar(self.root, self.order)

    @classmethod
    def from_columnar(cls, columnar) -> "CompiledOBDD":
        """Rebuild an object-kernel artifact from its columnar form."""
        manager, root = columnar.to_obdd()
        return cls(manager, root, tuple(columnar.order))


def compile_lineage_to_obdd(
    lineage: MonotoneDNFLineage, order: Sequence[Fact] | None = None
) -> CompiledOBDD:
    """Compile a monotone DNF lineage into a reduced OBDD under a fact order."""
    if order is None:
        order = default_fact_order(lineage.instance)
    order = list(order)
    missing = lineage.variables() - set(order)
    if missing:
        raise CompilationError("fact order does not cover all lineage variables")
    manager = OBDD(order)
    root = manager.build_from_clauses(sorted(lineage.clauses, key=_clause_key))
    return CompiledOBDD(manager, root, tuple(order))


def compile_query_to_obdd(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    instance: Instance,
    order: Sequence[Fact] | None = None,
    use_path_decomposition: bool = False,
    engine=None,
) -> CompiledOBDD:
    """Compile the lineage of a UCQ≠ on an instance into an OBDD.

    ``use_path_decomposition=True`` forces the variable order derived from a
    path decomposition (the Theorem 6.7 regime); otherwise the default order
    is used (path order when the instance is thin, tree order otherwise).

    Passing a :class:`repro.engine.CompilationEngine` (and no explicit
    ``order``) serves the compilation from the engine's cache, reusing the
    instance's decompositions and fact orders across calls.
    """
    if engine is not None and order is None:
        return engine.compile(query, instance, use_path_decomposition)
    lineage = lineage_of(query, instance)
    if order is None:
        if use_path_decomposition:
            order = fact_order_from_path_decomposition(instance)
        else:
            order = default_fact_order(instance)
    return compile_lineage_to_obdd(lineage, order)


def compile_circuit_to_obdd(
    circuit: BooleanCircuit, order: Sequence | None = None
) -> CompiledOBDD:
    """Compile an arbitrary lineage circuit into an OBDD (Lemma 6.6 workhorse).

    The order defaults to the circuit's variable insertion order; callers that
    have a decomposition of the underlying instance should pass the
    corresponding fact order to obtain the Section 6 width guarantees.
    """
    if order is None:
        order = list(circuit.variables())
    manager = OBDD(list(order))
    root = manager.build_from_circuit(circuit)
    return CompiledOBDD(manager, root, tuple(order))


def obdd_width_of_query(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    instance: Instance,
    use_path_decomposition: bool = False,
) -> int:
    """The width of the compiled OBDD for the query's lineage on the instance."""
    return compile_query_to_obdd(query, instance, use_path_decomposition=use_path_decomposition).width


def compile_query_to_dnnf(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery, instance: Instance
) -> DNNF:
    """A d-DNNF for the query lineage obtained through the OBDD route.

    The tree-automaton construction of Theorem 6.11 is available in
    :mod:`repro.provenance.automaton_provenance`; this helper is the generic
    fallback that works for any UCQ≠ on any instance.
    """
    return compile_query_to_obdd(query, instance).to_dnnf()


def _clause_key(clause: frozenset[Fact]) -> tuple:
    return tuple(sorted((f.relation, tuple(repr(a) for a in f.arguments)) for f in clause))
