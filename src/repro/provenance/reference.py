"""Seed tree-encoding and automaton-provenance constructions, kept as oracles.

PR 5 rebuilt the provenance front-end as fused kernels: the single-sweep
tree-encoding builder of :mod:`repro.provenance.tree_encoding` and the
dense-state automaton-provenance kernel of
:mod:`repro.provenance.automaton_provenance`.  This module preserves the
*seed* constructions in their original form:

* ``tree_encoding_seed`` — binarize, then a recursive node-by-node build with
  a full scan over all bags per fact to find its topmost covering bag, and a
  final quadratic ``validate`` pass (recursion depth follows the
  decomposition depth, so deep path-shaped instances overflow the stack);
* ``reachable_states_seed`` / ``provenance_seed`` — child states sorted by
  ``repr`` at every node, the full child-state product enumerated twice
  (once for reachability, once for the gates), every per-child gate table
  retained until the end, and no co-reachability pruning.

They exist for two purposes:

* **differential testing**: the property suite checks that the fused
  pipeline's d-DNNF / circuit / OBDD provenance is extensionally equal to
  these seed constructions (``tests/test_structure_kernels.py``);
* **benchmarking**: ``benchmarks/bench_structure.py`` measures the fused
  front-end against this seed path and gates CI on a >= 3x speedup.

Do not use these from production code paths.
"""

from __future__ import annotations

from typing import Sequence

from repro.booleans.circuit import BooleanCircuit
from repro.booleans.dnnf import DNNF
from repro.data.gaifman import gaifman_graph
from repro.data.instance import Fact, Instance
from repro.errors import DecompositionError
from repro.provenance.automata import State, TreeAutomaton
from repro.provenance.tree_encoding import EncodingNode, TreeEncoding
from repro.structure.nice import binarize
from repro.structure.tree_decomposition import TreeDecomposition

__all__ = [
    "provenance_seed",
    "reachable_states_seed",
    "tree_encoding_seed",
]


def tree_encoding_seed(
    instance: Instance, decomposition: TreeDecomposition | None = None
) -> TreeEncoding:
    """The seed tree-encoding builder (recursive, with per-fact bag scans)."""
    if decomposition is None:
        from repro.structure.reference import (
            best_heuristic_ordering_seed,
            decomposition_from_ordering_seed,
        )

        graph = gaifman_graph(instance)
        if len(graph) == 0:
            decomposition = TreeDecomposition(bags={0: frozenset()}, children={0: []}, root=0)
        else:
            decomposition = decomposition_from_ordering_seed(
                graph, best_heuristic_ordering_seed(graph)
            )
    decomposition = binarize(decomposition)

    order = decomposition.topological_order()
    position = {node: index for index, node in enumerate(order)}
    facts_at: dict[int, list[Fact]] = {node: [] for node in decomposition.nodes()}
    for f in instance:
        elements = set(f.elements())
        covering = [node for node in order if elements <= decomposition.bags[node]]
        if not covering:
            raise DecompositionError(f"no bag covers fact {f}")
        topmost = min(covering, key=lambda node: position[node])
        facts_at[topmost].append(f)

    nodes: dict[int, EncodingNode] = {}
    counter = [0]

    def fresh() -> int:
        counter[0] += 1
        return counter[0] - 1

    def build(bag_node: int) -> int:
        bag = decomposition.bags[bag_node]
        child_ids = tuple(build(child) for child in decomposition.children.get(bag_node, []))
        facts = sorted(facts_at[bag_node], key=_fact_key)
        if not facts:
            identifier = fresh()
            nodes[identifier] = EncodingNode(identifier, bag, None, child_ids)
            return identifier
        current_children = child_ids
        identifier = -1
        for f in facts:
            identifier = fresh()
            nodes[identifier] = EncodingNode(identifier, bag, f, current_children)
            current_children = (identifier,)
        return identifier

    root = build(decomposition.root)
    encoding = TreeEncoding(instance, nodes, root)
    encoding.validate()
    return encoding


def reachable_states_seed(
    automaton: TreeAutomaton, encoding: TreeEncoding
) -> dict[int, set[State]]:
    """The seed reachability pass: repr-sorted full products at every node."""
    reachable: dict[int, set[State]] = {}
    for identifier in encoding.post_order():
        node = encoding.nodes[identifier]
        child_state_sets = [sorted(reachable[child], key=repr) for child in node.children]
        states: set[State] = set()
        for combination in _product(child_state_sets):
            presence_options = (False, True) if node.fact is not None else (False,)
            for fact_present in presence_options:
                states.add(automaton.transition(node, fact_present, combination))
        reachable[identifier] = states
    return reachable


def provenance_seed(automaton: TreeAutomaton, encoding: TreeEncoding):
    """The seed provenance construction of Theorems 6.3/6.11.

    Returns a :class:`repro.provenance.automaton_provenance.ProvenanceResult`
    built the seed way: a second full product enumeration over repr-sorted
    child states, gates emitted for every reachable state (accepting-
    co-reachable or not), and all per-child gate tables held until the end.
    """
    from repro.provenance.automaton_provenance import ProvenanceResult

    reachable = reachable_states_seed(automaton, encoding)

    dnnf = DNNF()
    circuit = BooleanCircuit()

    dnnf_gate: dict[int, dict[State, int]] = {}
    circuit_gate: dict[int, dict[State, int]] = {}

    for identifier in encoding.post_order():
        node = encoding.nodes[identifier]
        children = node.children
        child_states: list[list[State]] = [sorted(reachable[c], key=repr) for c in children]

        combos_for_state: dict[State, list[tuple[tuple[State, ...], bool]]] = {}
        for combination in _product(child_states):
            presence_options = (False, True) if node.fact is not None else (False,)
            for fact_present in presence_options:
                state = automaton.transition(node, fact_present, combination)
                combos_for_state.setdefault(state, []).append((combination, fact_present))

        dnnf_gate[identifier] = {}
        circuit_gate[identifier] = {}
        for state, combos in combos_for_state.items():
            dnnf_terms: list[int] = []
            circuit_terms: list[int] = []
            for combination, fact_present in combos:
                dnnf_parts: list[int] = []
                circuit_parts: list[int] = []
                for child, child_state in zip(children, combination):
                    dnnf_parts.append(dnnf_gate[child][child_state])
                    circuit_parts.append(circuit_gate[child][child_state])
                if node.fact is not None:
                    dnnf_parts.append(dnnf.literal(node.fact, fact_present))
                    fact_gate = circuit.variable(node.fact)
                    circuit_parts.append(fact_gate if fact_present else circuit.negation(fact_gate))
                dnnf_terms.append(dnnf.conjunction(dnnf_parts))
                circuit_terms.append(circuit.conjunction(circuit_parts))
            dnnf_gate[identifier][state] = dnnf.disjunction(dnnf_terms)
            circuit_gate[identifier][state] = circuit.disjunction(circuit_terms)

    root_states = sorted(reachable[encoding.root], key=repr)
    accepting = [state for state in root_states if automaton.is_accepting(state)]
    dnnf.set_output(
        dnnf.disjunction([dnnf_gate[encoding.root][state] for state in accepting])
        if accepting
        else dnnf.constant(False)
    )
    circuit.set_output(
        circuit.disjunction([circuit_gate[encoding.root][state] for state in accepting])
        if accepting
        else circuit.constant(False)
    )

    counts = {identifier: len(states) for identifier, states in reachable.items()}
    total_gates = sum(len(gates) for gates in dnnf_gate.values())
    return ProvenanceResult(
        dnnf=dnnf,
        circuit=circuit,
        reachable_state_counts=counts,
        peak_live_gates=total_gates,
    )


def _product(sequences: Sequence[Sequence[State]]):
    if not sequences:
        yield ()
        return
    head, *tail = sequences
    for item in head:
        for rest in _product(tail):
            yield (item, *rest)


def _fact_key(f: Fact) -> tuple:
    return (f.relation, tuple(repr(a) for a in f.arguments))
