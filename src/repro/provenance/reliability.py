"""Two-terminal network reliability as an MSO property on treelike instances.

Connectivity of the kept edges is the textbook MSO-definable property that is
not expressible as a UCQ; it exercises the full strength of the paper's
bounded-treewidth machinery (Theorem 3.2): on a treewidth-k network, the
automaton below has at most Bell(k+3) states per node, so the provenance
d-DNNF is linear-size (Theorem 6.11) and exact source-target reliability is
computed in one bottom-up pass (ra-linear, Theorem 4.2 upper bound).

The automaton state is the partition of the current bag's elements — together
with two virtual markers standing for "the component of the source" and "the
component of the target" — into connected components of the kept edges seen so
far, collapsed to an ``ACCEPT`` sink once the two markers meet.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.data.instance import Instance
from repro.provenance.automata import FunctionalAutomaton, State
from repro.provenance.tree_encoding import EncodingNode

ACCEPT = "ACCEPT"
SOURCE_MARKER = ("__terminal__", "source")
TARGET_MARKER = ("__terminal__", "target")


def _merge_overlapping(items: Iterable[set]) -> list[set]:
    """Union-find style closure: merge all sets that share an element."""
    blocks: list[set] = []
    for item in items:
        touching = [block for block in blocks if block & item]
        merged = set(item)
        for block in touching:
            merged |= block
            blocks.remove(block)
        blocks.append(merged)
    return blocks


def st_connectivity_automaton(
    source: Any, target: Any, relations: Sequence[str] | None = None
) -> FunctionalAutomaton:
    """Accepts the worlds in which the kept binary facts connect source to target.

    ``relations`` restricts which binary relations count as edges (all binary
    relations by default).  Edges are treated as undirected, following the
    paper's graph conventions.  If the source or target element never occurs in
    the instance, the property is unsatisfiable (unless source == target).
    """
    if source == target:
        return FunctionalAutomaton(
            lambda node, fact_present, child_states: ACCEPT,
            lambda state: True,
            name="st-connectivity[trivial]",
        )

    def relevant(node: EncodingNode) -> bool:
        return (
            node.fact is not None
            and node.fact.arity == 2
            and (relations is None or node.fact.relation in relations)
        )

    def transition(node: EncodingNode, fact_present: bool, child_states: Sequence[State]) -> State:
        if any(state == ACCEPT for state in child_states):
            return ACCEPT
        markers = (SOURCE_MARKER, TARGET_MARKER)
        items: list[set] = []
        for state in child_states:
            for block in state:  # type: ignore[union-attr]
                kept = {x for x in block if x in node.bag or x in markers}
                if kept:
                    items.append(kept)
        # Anchor the terminal markers to their elements while those are in scope.
        if source in node.bag:
            items.append({source, SOURCE_MARKER})
        if target in node.bag:
            items.append({target, TARGET_MARKER})
        # The kept edge of this node, if any.
        if fact_present and relevant(node):
            items.append(set(node.fact.elements()))
        blocks = _merge_overlapping(items)
        for block in blocks:
            if SOURCE_MARKER in block and TARGET_MARKER in block:
                return ACCEPT
        return frozenset(frozenset(block) for block in blocks)

    def accepting(state: State) -> bool:
        return state == ACCEPT

    return FunctionalAutomaton(
        transition, accepting, name=f"st-connectivity[{source}->{target}]"
    )


def st_reliability(
    probabilistic_instance, source: Any, target: Any, relations: Sequence[str] | None = None
):
    """Exact probability that the kept edges connect ``source`` to ``target``.

    Runs the state-space dynamic programming of Theorem 3.2 over a tree
    encoding of the instance; exact rational output.
    """
    from repro.provenance.automata import automaton_probability
    from repro.provenance.tree_encoding import tree_encoding

    encoding = tree_encoding(probabilistic_instance.instance)
    automaton = st_connectivity_automaton(source, target, relations)
    return automaton_probability(automaton, encoding, probabilistic_instance)


def is_st_connected(world, source: Any, target: Any, relations: Sequence[str] | None = None) -> bool:
    """Reference implementation by plain graph search (used for testing).

    ``world`` is an instance (or iterable of facts) whose binary facts are the
    kept edges.
    """
    if source == target:
        return True
    facts = world.facts if isinstance(world, Instance) else tuple(world)
    adjacency: dict[Any, set] = {}
    for f in facts:
        if f.arity != 2 or (relations is not None and f.relation not in relations):
            continue
        a, b = f.arguments
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    seen = {source}
    stack = [source]
    while stack:
        current = stack.pop()
        for neighbor in adjacency.get(current, ()):
            if neighbor == target:
                return True
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return False
