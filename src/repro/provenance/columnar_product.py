"""Columnar automaton-provenance product: the state DP over dense id arrays.

The object-kernel probability evaluation of
:func:`repro.provenance.automata.automaton_probability` carries a
``dict[State, Fraction]`` per encoding node and re-enumerates the child
product on every node.  This module evaluates the same dynamic program over
the **dense transition tables** of
:func:`repro.provenance.automaton_provenance.reachability_tables`: states
become integer ids, per-node weights become columns indexed by those ids, and
each node's update is a gather over child-weight columns followed by a
scatter-add into the node's column — one level of the encoding at a time,
vectorized with numpy in the float regime.

Arithmetic contract, matching the OBDD sweeps:

* ``exact=True`` (default): Python loops over the id columns in
  :class:`~fractions.Fraction` arithmetic — exact end to end, bit-for-bit the
  value of the object kernel (the differential oracle checks this);
* ``exact=False``: numpy float columns with per-node gather/scatter (the
  fallback backend runs the same loops in hardware floats); degenerate
  results (non-finite or outside ``[0, 1]``) rerun the exact kernel.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.booleans.columnar import array_backend
from repro.data.tid import ProbabilisticInstance
from repro.errors import LineageError
from repro.provenance.automata import TreeAutomaton
from repro.provenance.automaton_provenance import reachability_tables
from repro.provenance.tree_encoding import TreeEncoding, tree_encoding


def columnar_automaton_probability(
    automaton: TreeAutomaton,
    encoding: TreeEncoding,
    probabilistic_instance: ProbabilisticInstance,
    exact: bool = True,
) -> Fraction | float:
    """Probability that the automaton accepts, over dense-id weight columns."""
    if probabilistic_instance.instance != encoding.instance:
        raise LineageError("the probabilistic instance does not match the encoding's instance")
    post, states, combos = reachability_tables(automaton, encoding)
    if exact:
        return _exact_product(automaton, encoding, probabilistic_instance, post, states, combos)
    value = _float_product(automaton, encoding, probabilistic_instance, post, states, combos)
    if not (math.isfinite(value) and -1e-9 <= value <= 1 + 1e-9):
        return float(
            _exact_product(automaton, encoding, probabilistic_instance, post, states, combos)
        )
    return min(max(value, 0.0), 1.0)


def _exact_product(automaton, encoding, probabilistic_instance, post, states, combos) -> Fraction:
    """The exact regime: Fraction columns indexed by dense state ids."""
    nodes = encoding.nodes
    zero = Fraction(0)
    one = Fraction(1)
    weights: dict[int, list[Fraction]] = {}
    for identifier in post:
        node = nodes[identifier]
        children = node.children
        if node.fact is not None:
            p = probabilistic_instance.probability_of(node.fact)
            fact_weight = (one - p, p)  # indexed by fact_present
        else:
            fact_weight = (one, one)
        column = [zero] * len(states[identifier])
        child_columns = [weights[child] for child in children]
        for state_id, state_combos in enumerate(combos[identifier]):
            total = zero
            for combination, fact_present in state_combos:
                term = fact_weight[fact_present]
                if term == 0:
                    continue
                for position, child_state_id in enumerate(combination):
                    term *= child_columns[position][child_state_id]
                    if term == 0:
                        break
                total += term
            column[state_id] = total
        weights[identifier] = column
        for child in children:
            del weights[child]
    root_column = weights[encoding.root]
    if sum(root_column, zero) != 1:
        raise LineageError("state distribution does not sum to 1; the automaton is not total")
    return sum(
        (
            weight
            for state_id, weight in enumerate(root_column)
            if automaton.is_accepting(states[encoding.root][state_id])
        ),
        zero,
    )


def _float_product(automaton, encoding, probabilistic_instance, post, states, combos) -> float:
    """The float regime: per-node gather/scatter over weight columns."""
    numpy_module = array_backend()
    nodes = encoding.nodes
    weights: dict[int, object] = {}
    for identifier in post:
        node = nodes[identifier]
        children = node.children
        if node.fact is not None:
            p = float(probabilistic_instance.probability_of(node.fact))
            fact_weight = (1.0 - p, p)
        else:
            fact_weight = (1.0, 1.0)
        child_columns = [weights[child] for child in children]
        state_count = len(states[identifier])
        if numpy_module is not None:
            column = _scatter_node(
                numpy_module, state_count, combos[identifier], child_columns, fact_weight
            )
        else:
            column = _loop_node(state_count, combos[identifier], child_columns, fact_weight)
        weights[identifier] = column
        for child in children:
            del weights[child]
    root_column = weights[encoding.root]
    total = 0.0
    for state_id, state in enumerate(states[encoding.root]):
        if automaton.is_accepting(state):
            total += float(root_column[state_id])
    return total


def _scatter_node(numpy_module, state_count, node_combos, child_columns, fact_weight):
    """One node's update as flat gathers and a single scatter-add.

    The node's combinations are flattened into id columns (one per child
    position, plus the resulting state and the fact-presence bit); the
    contribution vector is the elementwise product of the gathered child
    weights and the fact weights, accumulated per resulting state with
    ``add.at``.
    """
    np = numpy_module
    flat_states: list[int] = []
    flat_present: list[int] = []
    flat_children: list[list[int]] = [[] for _ in child_columns]
    for state_id, state_combos in enumerate(node_combos):
        for combination, fact_present in state_combos:
            flat_states.append(state_id)
            flat_present.append(1 if fact_present else 0)
            for position, child_state_id in enumerate(combination):
                flat_children[position].append(child_state_id)
    contributions = np.where(
        np.asarray(flat_present, dtype=np.int64) == 1, fact_weight[1], fact_weight[0]
    )
    for position, column in enumerate(child_columns):
        contributions = contributions * np.asarray(column, dtype=np.float64)[
            np.asarray(flat_children[position], dtype=np.int64)
        ]
    out = np.zeros(state_count, dtype=np.float64)
    np.add.at(out, np.asarray(flat_states, dtype=np.int64), contributions)
    return out


def _loop_node(state_count, node_combos, child_columns, fact_weight):
    """The no-numpy fallback: same update in scalar floats."""
    column = [0.0] * state_count
    for state_id, state_combos in enumerate(node_combos):
        total = 0.0
        for combination, fact_present in state_combos:
            term = fact_weight[fact_present]
            for position, child_state_id in enumerate(combination):
                term *= child_columns[position][child_state_id]
            total += term
        column[state_id] = total
    return column


def ucq_probability_via_columnar_automaton(
    query,
    probabilistic_instance: ProbabilisticInstance,
    encoding: TreeEncoding | None = None,
    exact: bool = True,
) -> Fraction | float:
    """UCQ≠ probability through the columnar automaton product.

    The columnar sibling of :func:`repro.provenance.ucq_automaton.
    ucq_probability_via_automaton`: same automaton, same encoding, the
    dynamic programming evaluated over dense-id weight columns.
    """
    from repro.provenance.ucq_automaton import ucq_automaton

    if encoding is None:
        encoding = tree_encoding(probabilistic_instance.instance)
    return columnar_automaton_probability(
        ucq_automaton(query), encoding, probabilistic_instance, exact=exact
    )
