"""Lineage and provenance constructions on treelike instances (Section 6)."""

from repro.provenance.automata import (
    FunctionalAutomaton,
    accepts,
    automaton_probability,
    model_check,
    reachable_states,
    run_automaton,
)
from repro.provenance.automaton_provenance import (
    ProvenanceResult,
    provenance,
    provenance_circuit,
    provenance_dnnf,
    provenance_obdd,
)
from repro.provenance.compile_obdd import (
    CompiledOBDD,
    compile_circuit_to_obdd,
    compile_lineage_to_obdd,
    compile_query_to_dnnf,
    compile_query_to_obdd,
    obdd_width_of_query,
)
from repro.provenance.lineage import (
    MonotoneDNFLineage,
    brute_force_lineage_table,
    lineage_circuit,
    lineage_of,
)
from repro.provenance.mso_properties import (
    all_facts_present_automaton,
    fact_count_parity_automaton,
    incident_pair_automaton,
    matching_world_automaton,
    nonempty_automaton,
    parity_automaton,
    threshold_automaton,
)
from repro.provenance.reliability import (
    is_st_connected,
    st_connectivity_automaton,
    st_reliability,
)
from repro.provenance.tree_encoding import (
    EncodingNode,
    TreeEncoding,
    fused_tree_encoding,
    path_encoding,
    tree_encoding,
)
from repro.provenance.ucq_automaton import (
    ucq_automaton,
    ucq_lineage_dnnf,
    ucq_probability_via_automaton,
)
from repro.provenance.variable_orders import (
    default_fact_order,
    element_major_order,
    fact_order_from_path_decomposition,
    fact_order_from_tree_decomposition,
)

__all__ = [
    "CompiledOBDD",
    "EncodingNode",
    "FunctionalAutomaton",
    "MonotoneDNFLineage",
    "ProvenanceResult",
    "TreeEncoding",
    "accepts",
    "all_facts_present_automaton",
    "automaton_probability",
    "brute_force_lineage_table",
    "compile_circuit_to_obdd",
    "compile_lineage_to_obdd",
    "compile_query_to_dnnf",
    "compile_query_to_obdd",
    "default_fact_order",
    "element_major_order",
    "fact_count_parity_automaton",
    "fact_order_from_path_decomposition",
    "fact_order_from_tree_decomposition",
    "fused_tree_encoding",
    "incident_pair_automaton",
    "is_st_connected",
    "lineage_circuit",
    "lineage_of",
    "matching_world_automaton",
    "model_check",
    "nonempty_automaton",
    "obdd_width_of_query",
    "parity_automaton",
    "path_encoding",
    "provenance",
    "provenance_circuit",
    "provenance_dnnf",
    "provenance_obdd",
    "reachable_states",
    "run_automaton",
    "st_connectivity_automaton",
    "st_reliability",
    "threshold_automaton",
    "tree_encoding",
    "ucq_automaton",
    "ucq_lineage_dnnf",
    "ucq_probability_via_automaton",
]
