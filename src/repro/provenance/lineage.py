"""Lineage computation for UCQ≠ queries (Definition 6.1).

The lineage of a monotone query on an instance is the monotone Boolean
function, over one variable per fact, that is true exactly on the
subinstances satisfying the query.  For UCQ≠ queries the lineage is the
disjunction, over all matches, of the conjunction of the facts of the match —
which we materialize both as a monotone DNF object and as a monotone
:class:`BooleanCircuit` (a *lineage circuit*, Definition 6.2).

Data complexity is polynomial for a fixed query: the number of matches is at
most ``|I|^{|vars(q)|}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.booleans.circuit import BooleanCircuit
from repro.data.instance import Fact, Instance
from repro.queries.cq import ConjunctiveQuery
from repro.queries.matching import minimal_matches, ucq_matches
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq


@dataclass(frozen=True)
class MonotoneDNFLineage:
    """The lineage of a monotone query as a set of matches (monotone DNF).

    ``clauses`` are the minimal matches; the function is true on a world iff
    the world contains all facts of some clause.
    """

    instance: Instance
    clauses: tuple[frozenset[Fact], ...]

    def evaluate(self, world: Iterable[Fact] | Mapping[Fact, bool]) -> bool:
        if isinstance(world, Mapping):
            present = {f for f, kept in world.items() if kept}
        else:
            present = set(world)
        return any(clause <= present for clause in self.clauses)

    @property
    def clause_count(self) -> int:
        return len(self.clauses)

    def variables(self) -> set[Fact]:
        used: set[Fact] = set()
        for clause in self.clauses:
            used |= clause
        return used

    def is_read_once_shaped(self) -> bool:
        """True when no fact appears in two clauses (the clauses are independent).

        This is a sufficient condition for the lineage to be read-once, which
        makes probability evaluation a simple product/union computation.
        """
        seen: set[Fact] = set()
        for clause in self.clauses:
            if clause & seen:
                return False
            seen |= clause
        return True

    def to_circuit(self) -> BooleanCircuit:
        """A monotone lineage circuit (OR of ANDs of fact variables)."""
        circuit = BooleanCircuit()
        terms = [
            circuit.conjunction([circuit.variable(f) for f in sorted(clause, key=_fact_key)])
            for clause in self.clauses
        ]
        circuit.set_output(circuit.disjunction(terms))
        return circuit


def lineage_of(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    instance: Instance,
    minimal: bool = True,
    engine=None,
) -> MonotoneDNFLineage:
    """The lineage of a UCQ≠ on an instance, as a monotone DNF of matches.

    With ``minimal=True`` only inclusion-minimal matches are kept (the Boolean
    function is unchanged; the representation is smaller).  Passing a
    :class:`repro.engine.CompilationEngine` serves the minimal lineage from
    the engine's cache.
    """
    query = as_ucq(query)
    if engine is not None and minimal:
        return engine.lineage(query, instance)
    matches = minimal_matches(query, instance) if minimal else ucq_matches(query, instance)
    return MonotoneDNFLineage(instance, tuple(matches))


def lineage_circuit(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery, instance: Instance
) -> BooleanCircuit:
    """A monotone lineage circuit of the query on the instance (Definition 6.2)."""
    return lineage_of(query, instance).to_circuit()


def brute_force_lineage_table(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery, instance: Instance
) -> dict[frozenset[Fact], bool]:
    """The full truth table of the lineage, by evaluating the query on every
    subinstance (exponential; used as a testing oracle)."""
    from repro.queries.matching import satisfies

    query = as_ucq(query)
    table: dict[frozenset[Fact], bool] = {}
    for world in instance.all_subinstances():
        table[frozenset(world.facts)] = satisfies(world, query)
    return table


def _fact_key(f: Fact) -> tuple:
    return (f.relation, tuple(repr(a) for a in f.arguments))
