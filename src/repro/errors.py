"""Exception hierarchy for the repro library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch library failures without catching unrelated Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class SignatureError(ReproError):
    """A relation or fact is inconsistent with its signature (arity, name)."""


class InstanceError(ReproError):
    """An operation on a relational instance received invalid input."""


class DecompositionError(ReproError):
    """A tree/path decomposition is invalid or could not be constructed."""


class QueryError(ReproError):
    """A query is malformed or unsupported by the requested operation."""


class LineageError(ReproError):
    """A lineage representation (circuit, OBDD, d-DNNF, formula) is invalid."""


class CompilationError(ReproError):
    """Knowledge compilation between lineage representations failed."""


class ProbabilityError(ReproError):
    """Probability evaluation received an invalid valuation or representation."""


class UnsafeQueryError(ProbabilityError):
    """Raised when the lifted-inference rules do not apply (the query is unsafe).

    Both the compiled lifted tier (:mod:`repro.probability.lifted`) and its
    recursive differential reference (:mod:`repro.probability.safe_plans`)
    raise this error, and only at *plan construction*: once a plan exists,
    evaluation always succeeds, so ``is_liftable`` and evaluation can never
    disagree.
    """


class UnfoldingError(ReproError):
    """The unfolding construction of Section 9 received an unsupported query."""


class ExecutionAborted(ReproError):
    """A cooperative checkpoint stopped an evaluation before it finished.

    The two concrete subclasses are the typed outcomes the resilience layer
    (:mod:`repro.resilience`) promises: an aborted call never returns a
    partial or approximate value under an exact method — it raises one of
    these, and ``method="auto"`` may catch :class:`BudgetExceeded` to fail
    over to a cheaper route.
    """


class DeadlineExceeded(ExecutionAborted):
    """The wall-clock deadline of the active :class:`~repro.resilience.Deadline`
    passed while an evaluation was still running.

    Unlike :class:`BudgetExceeded`, this is terminal for the whole call:
    no remaining route can finish either, so the router re-raises instead
    of failing over.
    """


class BudgetExceeded(ExecutionAborted):
    """A resource cap of the active :class:`~repro.resilience.ResourceBudget`
    (OBDD node allocations, lifted-executor rows) was exhausted.

    Per-attempt, not per-call: the ``method="auto"`` failover chain resets
    the usage counters and tries the next feasible route.
    """


class WorkerCrashError(CompilationError):
    """A parallel worker died and the bounded shard retries were exhausted."""


class SegmentError(CompilationError):
    """A shared-memory segment is absent or holds a corrupt columnar buffer."""


class StoreError(ReproError):
    """The persistent artifact store cannot serve a request.

    Raised only for *operational* failures (an unusable store directory, a
    lock that cannot be acquired, a corrupt entry encountered by an explicit
    maintenance command).  Ordinary cache traffic never raises it: a damaged
    entry on the read path is quarantined and reported as a miss, so the
    engine transparently recompiles — corruption costs time, never
    correctness.
    """
