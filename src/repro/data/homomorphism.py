"""Homomorphisms and isomorphisms between relational instances (Section 2).

A homomorphism from instance ``I`` to instance ``I'`` is a function on domains
that maps every fact of ``I`` to a fact of ``I'``.  These are used for the
semantics of homomorphism-closed queries (Proposition 8.9) and to validate
unfoldings (Section 9).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.data.instance import Fact, Instance


def is_homomorphism(mapping: Mapping[Any, Any], source: Instance, target: Instance) -> bool:
    """Check that ``mapping`` is a homomorphism from ``source`` to ``target``."""
    target_facts = set(target.facts)
    for f in source:
        if any(a not in mapping for a in f.arguments):
            return False
        image = Fact(f.relation, tuple(mapping[a] for a in f.arguments))
        if image not in target_facts:
            return False
    return True


def find_homomorphism(source: Instance, target: Instance) -> dict[Any, Any] | None:
    """Find one homomorphism from ``source`` to ``target``, or ``None``.

    Uses backtracking over the source facts with forward pruning; exponential
    in the worst case but fine for the small query-sized sources we use.
    """
    for hom in homomorphisms(source, target):
        return hom
    return None


def homomorphisms(source: Instance, target: Instance) -> Iterator[dict[Any, Any]]:
    """Enumerate all homomorphisms from ``source`` to ``target``."""
    facts = sorted(source.facts, key=lambda f: (-f.arity, f.relation))
    target_by_relation = {
        rel: target.facts_of(rel) for rel in {f.relation for f in facts}
    }

    def extend(index: int, mapping: dict[Any, Any]) -> Iterator[dict[Any, Any]]:
        if index == len(facts):
            # Isolated elements cannot exist under active-domain semantics,
            # so every source element is mapped at this point.
            yield dict(mapping)
            return
        f = facts[index]
        for candidate in target_by_relation.get(f.relation, ()):
            extension: dict[Any, Any] = {}
            ok = True
            for a, b in zip(f.arguments, candidate.arguments):
                expected = mapping.get(a, extension.get(a))
                if expected is None:
                    extension[a] = b
                elif expected != b:
                    ok = False
                    break
            if not ok:
                continue
            mapping.update(extension)
            yield from extend(index + 1, mapping)
            for key in extension:
                del mapping[key]

    yield from extend(0, {})


def has_homomorphism(source: Instance, target: Instance) -> bool:
    """True iff there is a homomorphism from ``source`` to ``target``."""
    return find_homomorphism(source, target) is not None


def is_isomorphism(mapping: Mapping[Any, Any], source: Instance, target: Instance) -> bool:
    """Check that ``mapping`` is an isomorphism between the two instances."""
    if len(set(mapping.values())) != len(mapping):
        return False
    if set(mapping.keys()) != set(source.domain):
        return False
    if set(mapping.values()) != set(target.domain):
        return False
    if not is_homomorphism(mapping, source, target):
        return False
    inverse = {v: k for k, v in mapping.items()}
    return is_homomorphism(inverse, target, source)


def are_isomorphic(source: Instance, target: Instance) -> bool:
    """True iff the two instances are isomorphic (brute-force; small instances)."""
    if len(source) != len(target) or source.domain_size != target.domain_size:
        return False
    for hom in homomorphisms(source, target):
        if is_isomorphism(hom, source, target):
            return True
    return False
