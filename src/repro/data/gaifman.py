"""Gaifman graphs of relational instances.

The Gaifman graph of an instance connects any two domain elements that
co-occur in a fact (Section 2).  The treewidth / pathwidth / tree-depth of an
instance are defined as those of its Gaifman graph.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.data.instance import Instance
from repro.structure.graph import Graph


def gaifman_graph(instance: Instance) -> Graph:
    """The Gaifman graph of ``instance``.

    Every domain element becomes a vertex (including elements that occur alone
    in unary facts); two elements are adjacent iff they co-occur in some fact.
    """
    graph = Graph()
    for element in instance.domain:
        graph.add_vertex(element)
    for f in instance:
        elements = f.elements()
        for i, u in enumerate(elements):
            for v in elements[i + 1 :]:
                graph.add_edge(u, v)
    return graph


def primal_graph_of_facts(facts: Iterable) -> Graph:
    """Gaifman graph of an arbitrary collection of facts (no Instance needed)."""
    graph = Graph()
    for f in facts:
        elements = f.elements()
        for u in elements:
            graph.add_vertex(u)
        for i, u in enumerate(elements):
            for v in elements[i + 1 :]:
                graph.add_edge(u, v)
    return graph


def incidence_graph(instance: Instance) -> Graph:
    """The incidence (bipartite) graph of an instance.

    Vertices are the domain elements plus one vertex per fact; each fact is
    adjacent to the elements it contains.  Used for MSO2-style encodings
    (e.g. the Hamiltonian-cycle query of Section 5.3).
    """
    graph = Graph()
    for element in instance.domain:
        graph.add_vertex(("elem", element))
    for index, f in enumerate(instance):
        fact_vertex: tuple[str, Any] = ("fact", index)
        graph.add_vertex(fact_vertex)
        for element in f.elements():
            graph.add_edge(fact_vertex, ("elem", element))
    return graph


def instance_treewidth(instance: Instance, exact: bool = False) -> int:
    """The treewidth of the instance (width of its Gaifman graph).

    With ``exact=True`` an exact branch-and-bound computation is used (only
    suitable for small instances); otherwise the best of the min-degree and
    min-fill heuristics is returned, which is an upper bound.
    """
    from repro.structure.tree_decomposition import treewidth

    return treewidth(gaifman_graph(instance), exact=exact)


def instance_pathwidth(instance: Instance) -> int:
    """An upper bound on the pathwidth of the instance's Gaifman graph."""
    from repro.structure.path_decomposition import pathwidth

    return pathwidth(gaifman_graph(instance))


def instance_tree_depth(instance: Instance) -> int:
    """The tree-depth of the instance's Gaifman graph (exact for small graphs)."""
    from repro.structure.tree_depth import tree_depth

    return tree_depth(gaifman_graph(instance))
