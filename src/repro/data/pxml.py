"""Probabilistic XML (PrXML) documents without data values.

The introduction of the paper points out that its bounded-treewidth
tractability result covers probabilistic XML [11]: a probabilistic XML
document is a tree, trees have treewidth 1, so MSO queries on probabilistic
XML are a special case of MSO queries on treelike TID instances.  This module
provides that substrate:

* :class:`PXMLNode` / :class:`PXMLDocument` -- p-documents in the PrXML
  {ind, mux} dialect: ordinary nodes carry labels, ``ind`` distributional
  nodes keep each child independently with its probability, ``mux`` nodes
  keep at most one child (probabilities summing to at most 1);
* possible-world semantics (:meth:`PXMLDocument.possible_worlds`) and exact
  brute-force probability of arbitrary properties of the sampled document;
* tree-pattern queries (:class:`TreePattern`) with child and descendant axes,
  Boolean matching on deterministic documents, and exact probability
  evaluation -- by brute force for any document, and through the monotone
  lineage/OBDD pipeline for PrXML{ind} documents (each pattern match
  depends on the ``ind`` edges along the root paths of its matched nodes);
* a translation of documents to relational instances over ``child`` /
  ``label_*`` relations, which always has treewidth 1 and plugs into every
  treelike algorithm of the library.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from itertools import product as cartesian_product
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.data.instance import Fact, Instance
from repro.data.signature import Signature
from repro.data.tid import ProbabilisticInstance, as_probability
from repro.errors import InstanceError

ORDINARY = "ordinary"
IND = "ind"
MUX = "mux"
_KINDS = (ORDINARY, IND, MUX)


@dataclass(frozen=True)
class PXMLNode:
    """A node of a p-document.

    ``children`` pairs each child with the probability of the edge leading to
    it: 1 for edges out of ordinary nodes, the independent keep-probability
    for ``ind`` nodes, and the choice probability for ``mux`` nodes.
    """

    identifier: str
    label: str | None = None
    kind: str = ORDINARY
    children: tuple[tuple["PXMLNode", Fraction], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise InstanceError(f"unknown p-document node kind {self.kind!r}")
        if self.kind == ORDINARY and self.label is None:
            raise InstanceError(f"ordinary node {self.identifier!r} needs a label")
        if self.kind != ORDINARY and self.label is not None:
            raise InstanceError(
                f"distributional node {self.identifier!r} must not carry a label"
            )

    def child_nodes(self) -> tuple["PXMLNode", ...]:
        return tuple(child for child, _ in self.children)

    def __str__(self) -> str:
        tag = self.label if self.kind == ORDINARY else self.kind
        return f"{tag}[{self.identifier}]"


def ordinary(identifier: str, label: str, children: Sequence[PXMLNode] = ()) -> PXMLNode:
    """An ordinary node: its children are kept with probability 1."""
    return PXMLNode(
        identifier,
        label=label,
        kind=ORDINARY,
        children=tuple((child, Fraction(1)) for child in children),
    )


def ind(identifier: str, children: Sequence[tuple[PXMLNode, Any]]) -> PXMLNode:
    """An ``ind`` node: each child is kept independently with its probability."""
    prepared = tuple((child, as_probability(probability)) for child, probability in children)
    return PXMLNode(identifier, kind=IND, children=prepared)


def mux(identifier: str, children: Sequence[tuple[PXMLNode, Any]]) -> PXMLNode:
    """A ``mux`` node: at most one child is kept, with the given probabilities."""
    prepared = tuple((child, as_probability(probability)) for child, probability in children)
    total = sum((probability for _, probability in prepared), Fraction(0))
    if total > 1:
        raise InstanceError(f"mux node {identifier!r} has total child probability {total} > 1")
    return PXMLNode(identifier, kind=MUX, children=prepared)


@dataclass(frozen=True)
class DeterministicDocument:
    """A possible world of a p-document: the retained ordinary nodes.

    ``parent`` maps every retained non-root node to its closest retained
    ordinary ancestor; ``labels`` maps retained node identifiers to labels.
    """

    root: str
    parent: Mapping[str, str]
    labels: Mapping[str, str]

    def nodes(self) -> tuple[str, ...]:
        return tuple(self.labels)

    def children_of(self, identifier: str) -> tuple[str, ...]:
        return tuple(sorted(child for child, parent in self.parent.items() if parent == identifier))

    def descendants_of(self, identifier: str) -> tuple[str, ...]:
        result = []
        stack = list(self.children_of(identifier))
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self.children_of(current))
        return tuple(sorted(result))

    def size(self) -> int:
        return len(self.labels)


class PXMLDocument:
    """A p-document: a tree of ordinary and distributional nodes."""

    def __init__(self, root: PXMLNode) -> None:
        if root.kind != ORDINARY:
            raise InstanceError("the root of a p-document must be an ordinary node")
        self._root = root
        self._nodes = tuple(self._collect(root))
        identifiers = [node.identifier for node in self._nodes]
        if len(set(identifiers)) != len(identifiers):
            raise InstanceError("p-document node identifiers must be unique")

    @staticmethod
    def _collect(node: PXMLNode) -> Iterator[PXMLNode]:
        yield node
        for child in node.child_nodes():
            yield from PXMLDocument._collect(child)

    # -- accessors ------------------------------------------------------------------

    @property
    def root(self) -> PXMLNode:
        return self._root

    def nodes(self) -> tuple[PXMLNode, ...]:
        return self._nodes

    def ordinary_nodes(self) -> tuple[PXMLNode, ...]:
        return tuple(node for node in self._nodes if node.kind == ORDINARY)

    def distributional_nodes(self) -> tuple[PXMLNode, ...]:
        return tuple(node for node in self._nodes if node.kind != ORDINARY)

    def is_deterministic(self) -> bool:
        return not self.distributional_nodes()

    def uses_only_ind(self) -> bool:
        return all(node.kind != MUX for node in self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"PXMLDocument({len(self.ordinary_nodes())} ordinary nodes, "
            f"{len(self.distributional_nodes())} distributional nodes)"
        )

    # -- possible-world semantics --------------------------------------------------------

    def possible_worlds(self) -> Iterator[tuple[DeterministicDocument, Fraction]]:
        """All deterministic documents with their probabilities.

        Exponential in the number of uncertain edges; intended for testing and
        for small documents (exact evaluation of large documents goes through
        lineages instead).
        """
        for kept_edges, probability in self._edge_scenarios():
            if probability == 0:
                continue
            yield self._world_from_edges(kept_edges), probability

    def _edge_scenarios(self) -> Iterator[tuple[frozenset[tuple[str, str]], Fraction]]:
        """Joint scenarios over the uncertain edges (per-node local choices)."""
        local_choices: list[list[tuple[list[tuple[str, str]], Fraction]]] = []
        for node in self._nodes:
            if node.kind == IND:
                options: list[tuple[list[tuple[str, str]], Fraction]] = [([], Fraction(1))]
                for child, probability in node.children:
                    extended = []
                    for kept, weight in options:
                        extended.append((kept + [(node.identifier, child.identifier)], weight * probability))
                        extended.append((kept, weight * (1 - probability)))
                    options = extended
                local_choices.append(options)
            elif node.kind == MUX:
                options = [([], 1 - sum((p for _, p in node.children), Fraction(0)))]
                for child, probability in node.children:
                    options.append(([(node.identifier, child.identifier)], probability))
                local_choices.append(options)
        certain_edges = [
            (node.identifier, child.identifier)
            for node in self._nodes
            if node.kind == ORDINARY
            for child in node.child_nodes()
        ]
        if not local_choices:
            yield frozenset(certain_edges), Fraction(1)
            return
        for combination in cartesian_product(*local_choices):
            edges = set(certain_edges)
            probability = Fraction(1)
            for kept, weight in combination:
                edges.update(kept)
                probability *= weight
            yield frozenset(edges), probability

    def _world_from_edges(self, kept_edges: frozenset[tuple[str, str]]) -> DeterministicDocument:
        """Collapse distributional nodes: retained ordinary nodes and their ordinary parents."""
        by_identifier = {node.identifier: node for node in self._nodes}
        parent_of = {
            child.identifier: node.identifier
            for node in self._nodes
            for child in node.child_nodes()
        }

        def is_retained(identifier: str) -> bool:
            current = identifier
            while current != self._root.identifier:
                parent = parent_of[current]
                edge = (parent, current)
                parent_node = by_identifier[parent]
                if parent_node.kind != ORDINARY and edge not in kept_edges:
                    return False
                current = parent
            return True

        labels: dict[str, str] = {}
        parents: dict[str, str] = {}
        for node in self.ordinary_nodes():
            if not is_retained(node.identifier):
                continue
            labels[node.identifier] = node.label or ""
            if node.identifier == self._root.identifier:
                continue
            ancestor = parent_of[node.identifier]
            while by_identifier[ancestor].kind != ORDINARY:
                ancestor = parent_of[ancestor]
            parents[node.identifier] = ancestor
        return DeterministicDocument(self._root.identifier, parents, labels)

    def probability_of(self, document_property: Callable[[DeterministicDocument], bool]) -> Fraction:
        """Exact probability of an arbitrary property of the sampled document."""
        total = Fraction(0)
        for world, probability in self.possible_worlds():
            if document_property(world):
                total += probability
        return total

    # -- uncertain edges and lineages -------------------------------------------------------

    def uncertain_edge_facts(self) -> dict[tuple[str, str], Fraction]:
        """The ``ind`` edges as probabilistic ``choice`` facts (PrXML{ind} only)."""
        if not self.uses_only_ind():
            raise InstanceError("uncertain edge facts require a PrXML{ind} document")
        return {
            (node.identifier, child.identifier): probability
            for node in self._nodes
            if node.kind == IND
            for child, probability in node.children
        }

    def root_path_requirements(self, identifier: str) -> frozenset[Fact]:
        """The ``ind`` edge facts a node's existence depends on."""
        by_identifier = {node.identifier: node for node in self._nodes}
        parent_of = {
            child.identifier: node.identifier
            for node in self._nodes
            for child in node.child_nodes()
        }
        required: set[Fact] = set()
        current = identifier
        while current != self._root.identifier:
            parent = parent_of[current]
            if by_identifier[parent].kind == IND:
                required.add(Fact("choice", (parent, current)))
            elif by_identifier[parent].kind == MUX:
                raise InstanceError("root-path requirements are only defined for PrXML{ind}")
            current = parent
        return frozenset(required)

    def choice_instance(self) -> ProbabilisticInstance:
        """The TID instance of ``choice`` facts, one per ``ind`` edge."""
        edges = self.uncertain_edge_facts()
        facts = [Fact("choice", edge) for edge in sorted(edges)]
        instance = Instance(facts, Signature([("choice", 2)]))
        return ProbabilisticInstance(
            instance, {Fact("choice", edge): probability for edge, probability in edges.items()}
        )

    # -- relational encoding ------------------------------------------------------------------

    def to_instance(self) -> Instance:
        """The relational encoding of the *document shape*: child and label facts.

        Distributional nodes are kept as explicitly labelled elements so the
        encoding is lossless; the Gaifman graph is the document tree, hence
        treewidth (at most) 1.
        """
        facts: list[Fact] = []
        relations: dict[str, int] = {"child": 2}
        for node in self._nodes:
            label = node.label if node.kind == ORDINARY else node.kind
            relation = f"label_{label}"
            relations[relation] = 1
            facts.append(Fact(relation, (node.identifier,)))
            for child in node.child_nodes():
                facts.append(Fact("child", (node.identifier, child.identifier)))
        return Instance(facts, Signature(sorted(relations.items())))

    def to_probabilistic_instance(self) -> ProbabilisticInstance:
        """The TID encoding of a PrXML{ind} document.

        ``child`` facts out of ``ind`` nodes carry their keep-probability,
        every other fact is certain.  Note the TID worlds are supersets of the
        document worlds (a fact may survive even if an ancestor edge does
        not); queries must be root-path aware, which is what
        :func:`pattern_lineage` implements.
        """
        if not self.uses_only_ind():
            raise InstanceError("the TID encoding requires a PrXML{ind} document")
        instance = self.to_instance()
        uncertain = self.uncertain_edge_facts()
        valuation = {}
        for f in instance.facts:
            if f.relation == "child" and f.arguments in uncertain:
                valuation[f] = uncertain[f.arguments]
            else:
                valuation[f] = Fraction(1)
        return ProbabilisticInstance(instance, valuation)


# -- tree patterns ---------------------------------------------------------------------------------


@dataclass(frozen=True)
class TreePattern:
    """A Boolean tree-pattern query: label tests linked by child/descendant axes.

    ``label`` is ``None`` for a wildcard; ``children`` pairs sub-patterns with
    their axis (``"child"`` or ``"descendant"``).
    """

    label: str | None
    children: tuple[tuple["TreePattern", str], ...] = ()

    def __post_init__(self) -> None:
        for _, axis in self.children:
            if axis not in ("child", "descendant"):
                raise InstanceError(f"unknown tree-pattern axis {axis!r}")

    def size(self) -> int:
        return 1 + sum(child.size() for child, _ in self.children)

    def __str__(self) -> str:
        label = self.label if self.label is not None else "*"
        if not self.children:
            return label
        parts = []
        for child, axis in self.children:
            connector = "/" if axis == "child" else "//"
            parts.append(f"{connector}{child}")
        return f"{label}[{','.join(parts)}]"


def pattern(label: str | None, *children: tuple[TreePattern, str]) -> TreePattern:
    """Shorthand constructor: ``pattern("a", (pattern("b"), "descendant"))``."""
    return TreePattern(label, tuple(children))


def pattern_embeddings(
    document: DeterministicDocument, query: TreePattern
) -> Iterator[dict[int, str]]:
    """All embeddings of the pattern into a deterministic document.

    The returned mappings use the pre-order index of each pattern node as the
    key (patterns are frozen dataclasses, so equal subpatterns would collide
    as dictionary keys).
    """
    indexed: list[tuple[int, TreePattern]] = []

    def index_pattern(node: TreePattern) -> int:
        position = len(indexed)
        indexed.append((position, node))
        for child, _ in node.children:
            index_pattern(child)
        return position

    index_pattern(query)

    def label_matches(node_identifier: str, pattern_node: TreePattern) -> bool:
        return pattern_node.label is None or document.labels[node_identifier] == pattern_node.label

    def embed(position: int, node_identifier: str) -> Iterator[dict[int, str]]:
        _, pattern_node = indexed[position]
        if not label_matches(node_identifier, pattern_node):
            return
        partial_maps: list[dict[int, str]] = [{position: node_identifier}]
        child_position = position + 1
        for child, axis in pattern_node.children:
            if axis == "child":
                candidates = document.children_of(node_identifier)
            else:
                candidates = document.descendants_of(node_identifier)
            extended: list[dict[int, str]] = []
            for mapping in partial_maps:
                for candidate in candidates:
                    for child_mapping in embed(child_position, candidate):
                        extended.append({**mapping, **child_mapping})
            partial_maps = extended
            child_position += child.size()
        yield from partial_maps

    for identifier in document.nodes():
        yield from embed(0, identifier)


def pattern_matches(document: DeterministicDocument, query: TreePattern) -> bool:
    """Boolean tree-pattern matching on a deterministic document."""
    return next(pattern_embeddings(document, query), None) is not None


def pattern_probability_brute_force(document: PXMLDocument, query: TreePattern) -> Fraction:
    """Exact pattern probability by possible-world enumeration."""
    return document.probability_of(lambda world: pattern_matches(world, query))


def pattern_lineage(document: PXMLDocument, query: TreePattern):
    """The monotone lineage of a tree pattern over the ``ind`` edge choices.

    Every embedding of the pattern into the fully-retained document
    contributes one clause: the ``choice`` facts on the root paths of the
    matched nodes.  A world of the ``choice`` TID satisfies the lineage iff
    the corresponding document world matches the pattern (PrXML{ind} only).
    """
    from repro.provenance.lineage import MonotoneDNFLineage

    if not document.uses_only_ind():
        raise InstanceError("pattern lineages require a PrXML{ind} document")
    full_world = document._world_from_edges(
        frozenset(
            (node.identifier, child.identifier)
            for node in document.nodes()
            for child in node.child_nodes()
        )
    )
    clauses: set[frozenset[Fact]] = set()
    for embedding in pattern_embeddings(full_world, query):
        requirement: frozenset[Fact] = frozenset()
        for node_identifier in embedding.values():
            requirement |= document.root_path_requirements(node_identifier)
        clauses.add(requirement)
    tid = document.choice_instance()
    minimal = [clause for clause in clauses if not any(other < clause for other in clauses)]
    ordered = sorted(minimal, key=lambda clause: (len(clause), sorted(map(str, clause))))
    return MonotoneDNFLineage(tid.instance, tuple(ordered))


def pattern_probability(document: PXMLDocument, query: TreePattern) -> Fraction:
    """Exact pattern probability through the lineage/OBDD pipeline (PrXML{ind})."""
    from repro.booleans.obdd import OBDD

    lineage = pattern_lineage(document, query)
    tid = document.choice_instance()
    if not lineage.clauses:
        return Fraction(0)
    if any(not clause for clause in lineage.clauses):
        return Fraction(1)
    manager = OBDD(list(tid.instance.facts))
    root = manager.build_from_clauses(lineage.clauses)
    return manager.probability(root, tid.valuation())


# -- generators ----------------------------------------------------------------------------------------


def random_pxml_document(
    depth: int,
    fanout: int = 2,
    labels: Sequence[str] = ("a", "b", "c"),
    ind_probability: float = 0.5,
    seed: int = 0,
) -> PXMLDocument:
    """A random PrXML{ind} document for scaling experiments.

    Each ordinary node at depth < ``depth`` gets ``fanout`` children; with
    probability ``ind_probability`` the children hang below an ``ind`` node
    with random keep-probabilities, otherwise they are certain.
    """
    if depth < 0:
        raise InstanceError("the depth must be non-negative")
    generator = random.Random(seed)
    counter = [0]

    def fresh(prefix: str) -> str:
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    def build(level: int) -> PXMLNode:
        label = generator.choice(list(labels))
        if level == depth:
            return ordinary(fresh("n"), label)
        children = [build(level + 1) for _ in range(fanout)]
        if generator.random() < ind_probability:
            keep = [
                (child, Fraction(generator.randint(1, 3), 4)) for child in children
            ]
            return ordinary(fresh("n"), label, [ind(fresh("d"), keep)])
        return ordinary(fresh("n"), label, children)

    return PXMLDocument(build(0))
