"""Relational data substrate: signatures, instances, Gaifman graphs, TIDs."""

from repro.data.gaifman import (
    gaifman_graph,
    incidence_graph,
    instance_pathwidth,
    instance_tree_depth,
    instance_treewidth,
)
from repro.data.homomorphism import (
    are_isomorphic,
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    is_homomorphism,
    is_isomorphism,
)
from repro.data.instance import Fact, Instance, fact, graph_instance
from repro.data.pxml import (
    DeterministicDocument,
    PXMLDocument,
    PXMLNode,
    TreePattern,
    ind,
    mux,
    ordinary,
    pattern,
    pattern_lineage,
    pattern_matches,
    pattern_probability,
    pattern_probability_brute_force,
    random_pxml_document,
)
from repro.data.signature import GRAPH_SIGNATURE, Relation, Signature
from repro.data.tid import ProbabilisticInstance, as_probability

__all__ = [
    "DeterministicDocument",
    "Fact",
    "GRAPH_SIGNATURE",
    "Instance",
    "PXMLDocument",
    "PXMLNode",
    "ProbabilisticInstance",
    "Relation",
    "Signature",
    "TreePattern",
    "are_isomorphic",
    "as_probability",
    "fact",
    "find_homomorphism",
    "gaifman_graph",
    "graph_instance",
    "has_homomorphism",
    "homomorphisms",
    "incidence_graph",
    "ind",
    "instance_pathwidth",
    "instance_tree_depth",
    "instance_treewidth",
    "mux",
    "ordinary",
    "pattern",
    "pattern_lineage",
    "pattern_matches",
    "pattern_probability",
    "pattern_probability_brute_force",
    "random_pxml_document",
    "is_homomorphism",
    "is_isomorphism",
]
