"""Tuple-independent probabilistic databases (TID), Definition 3.1.

A :class:`ProbabilisticInstance` pairs a relational instance with a
*probability valuation* mapping each fact to a probability in [0, 1].  The
semantics is the product distribution over subinstances where each fact is
kept independently with its probability.

Probabilities are stored as :class:`fractions.Fraction` so that all
computations in the library are exact, matching the paper's "ra-linear"
cost model (rational arithmetic of polynomial size).  Floats are accepted and
converted exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Iterable, Iterator, Mapping

from repro.data.instance import Fact, Instance
from repro.errors import ProbabilityError

ProbabilityLike = Fraction | float | int | str | tuple[int, int]


def as_probability(value: ProbabilityLike) -> Fraction:
    """Convert a user-supplied probability to an exact Fraction in [0, 1]."""
    if isinstance(value, tuple):
        prob = Fraction(value[0], value[1])
    elif isinstance(value, Fraction):
        prob = value
    elif isinstance(value, (int, str)):
        prob = Fraction(value)
    elif isinstance(value, float):
        prob = Fraction(value).limit_denominator(10**12)
    else:
        raise ProbabilityError(f"cannot interpret {value!r} as a probability")
    if not 0 <= prob <= 1:
        raise ProbabilityError(f"probability {prob} outside [0, 1]")
    return prob


class ProbabilisticInstance:
    """An instance together with a probability valuation on its facts.

    Parameters
    ----------
    instance:
        The underlying relational instance.
    valuation:
        Mapping from facts to probabilities.  Facts not mentioned get the
        ``default`` probability (1 by default, i.e. certain facts).
    default:
        Probability assigned to unmentioned facts.
    """

    __slots__ = ("_instance", "_valuation", "_fingerprint")

    def __init__(
        self,
        instance: Instance,
        valuation: Mapping[Fact, ProbabilityLike] | None = None,
        default: ProbabilityLike = 1,
    ) -> None:
        valuation = valuation or {}
        unknown = set(valuation) - set(instance.facts)
        if unknown:
            raise ProbabilityError(
                f"valuation mentions facts not in the instance: {sorted(map(str, unknown))[:3]}"
            )
        default_prob = as_probability(default)
        self._instance = instance
        self._valuation: dict[Fact, Fraction] = {
            f: as_probability(valuation.get(f, default_prob)) for f in instance
        }
        self._fingerprint: str | None = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def uniform(cls, instance: Instance, probability: ProbabilityLike = Fraction(1, 2)) -> "ProbabilisticInstance":
        """All facts get the same probability (1/2 by default).

        With probability 1/2 on every fact, query probability times ``2^|I|``
        is exactly the model count of the query lineage (footnote 3 of the
        paper), which is how the reductions of Sections 4 and 5 operate.
        """
        return cls(instance, {}, default=probability)

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[Fact, ProbabilityLike]], signature=None
    ) -> "ProbabilisticInstance":
        """Build both the instance and the valuation from (fact, probability) pairs."""
        pair_list = list(pairs)
        instance = Instance([f for f, _ in pair_list], signature)
        return cls(instance, dict(pair_list))

    # -- accessors ------------------------------------------------------------

    @property
    def instance(self) -> Instance:
        return self._instance

    @property
    def signature(self):
        return self._instance.signature

    @property
    def fingerprint(self) -> str:
        """A content fingerprint of the TID instance (SHA-256 hex digest).

        Extends the underlying instance's fingerprint with the probability
        valuation (in the instance's deterministic fact order), so two TID
        instances share a fingerprint exactly when they have the same facts,
        signature, and probabilities.  Used by
        :class:`repro.engine.CompilationEngine` to cache probability results.
        """
        if self._fingerprint is None:
            import hashlib

            hasher = hashlib.sha256(self._instance.fingerprint.encode())
            for f in self._instance:
                p = self._valuation[f]
                hasher.update(f"{p.numerator}/{p.denominator};".encode())
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    def probability_of(self, f: Fact) -> Fraction:
        try:
            return self._valuation[f]
        except KeyError:
            raise ProbabilityError(f"{f} is not a fact of this instance") from None

    def valuation(self) -> dict[Fact, Fraction]:
        """A copy of the full fact-to-probability mapping."""
        return dict(self._valuation)

    def __len__(self) -> int:
        return len(self._instance)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._instance)

    def __repr__(self) -> str:
        return f"ProbabilisticInstance({len(self)} facts)"

    # -- semantics ------------------------------------------------------------

    def world_probability(self, world: Instance | Iterable[Fact]) -> Fraction:
        """The probability pi(I') of a possible world ``I' ⊆ I`` (Definition 3.1)."""
        if isinstance(world, Instance):
            chosen = set(world.facts)
        else:
            chosen = set(world)
        unknown = chosen - set(self._instance.facts)
        if unknown:
            raise ProbabilityError("world contains facts not in the instance")
        probability = Fraction(1)
        for f in self._instance:
            p = self._valuation[f]
            probability *= p if f in chosen else 1 - p
        return probability

    def possible_worlds(self) -> Iterator[tuple[Instance, Fraction]]:
        """Enumerate all possible worlds with their probabilities (small instances)."""
        for world in self._instance.all_subinstances():
            yield world, self.world_probability(world)

    def certain_facts(self) -> tuple[Fact, ...]:
        """Facts with probability exactly 1."""
        return tuple(f for f in self._instance if self._valuation[f] == 1)

    def impossible_facts(self) -> tuple[Fact, ...]:
        """Facts with probability exactly 0."""
        return tuple(f for f in self._instance if self._valuation[f] == 0)

    def condition(self, kept: Iterable[Fact], removed: Iterable[Fact] = ()) -> "ProbabilisticInstance":
        """A new probabilistic instance where ``kept`` facts get probability 1
        and ``removed`` facts get probability 0 (used in reductions)."""
        new_valuation = dict(self._valuation)
        for f in kept:
            new_valuation[Fact(f.relation, f.arguments)] = Fraction(1)
        for f in removed:
            new_valuation[Fact(f.relation, f.arguments)] = Fraction(0)
        return ProbabilisticInstance(self._instance, new_valuation)
