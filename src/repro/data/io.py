"""Serialization of instances, TID valuations and lineage objects.

Relational instances and their probability valuations round-trip through JSON
and CSV; circuits, OBDDs, d-DNNFs and tree decompositions export to Graphviz
DOT for inspection.  Probabilities are serialized as ``"numerator/denominator"``
strings so that the exact :class:`fractions.Fraction` semantics of the library
survives the round trip (the paper's footnote 1: all numbers are rationals).
"""

from __future__ import annotations

import csv
import io
import json
from fractions import Fraction
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.data.instance import Fact, Instance
from repro.data.signature import Signature
from repro.data.tid import ProbabilisticInstance, as_probability
from repro.errors import InstanceError


# -- JSON -----------------------------------------------------------------------------------


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    """A JSON-serializable description of an instance (signature + facts)."""
    return {
        "signature": {relation.name: relation.arity for relation in instance.signature},
        "facts": [
            {"relation": f.relation, "arguments": list(f.arguments)} for f in instance.facts
        ],
    }


def instance_from_dict(data: Mapping[str, Any]) -> Instance:
    """The inverse of :func:`instance_to_dict`."""
    try:
        signature = Signature(sorted(data["signature"].items()))
        facts = [Fact(entry["relation"], tuple(entry["arguments"])) for entry in data["facts"]]
    except (KeyError, TypeError, AttributeError) as error:
        raise InstanceError(f"malformed instance description: {error}") from error
    return Instance(facts, signature)


def tid_to_dict(probabilistic_instance: ProbabilisticInstance) -> dict[str, Any]:
    """A JSON-serializable description of a TID instance."""
    description = instance_to_dict(probabilistic_instance.instance)
    description["probabilities"] = [
        {
            "relation": f.relation,
            "arguments": list(f.arguments),
            "probability": str(probabilistic_instance.probability_of(f)),
        }
        for f in probabilistic_instance.instance.facts
    ]
    return description


def tid_from_dict(data: Mapping[str, Any]) -> ProbabilisticInstance:
    """The inverse of :func:`tid_to_dict`."""
    instance = instance_from_dict(data)
    valuation: dict[Fact, Fraction] = {}
    for entry in data.get("probabilities", []):
        f = Fact(entry["relation"], tuple(entry["arguments"]))
        valuation[f] = as_probability(Fraction(entry["probability"]))
    return ProbabilisticInstance(instance, valuation)


def save_instance(instance: Instance | ProbabilisticInstance, path: str | Path) -> None:
    """Write an instance (or TID instance) to a JSON file."""
    if isinstance(instance, ProbabilisticInstance):
        payload = tid_to_dict(instance)
    else:
        payload = instance_to_dict(instance)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_instance(path: str | Path) -> Instance:
    """Read an instance from a JSON file (ignores probabilities if present)."""
    return instance_from_dict(json.loads(Path(path).read_text()))


def load_tid(path: str | Path) -> ProbabilisticInstance:
    """Read a TID instance from a JSON file (missing probabilities default to 1)."""
    return tid_from_dict(json.loads(Path(path).read_text()))


# -- CSV ------------------------------------------------------------------------------------------


def instance_to_csv(instance: Instance, probabilities: Mapping[Fact, Fraction] | None = None) -> str:
    """One row per fact: relation, arguments..., and optionally a probability column."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    max_arity = instance.signature.max_arity if len(instance) else 0
    header = ["relation"] + [f"arg{i + 1}" for i in range(max_arity)]
    if probabilities is not None:
        header.append("probability")
    writer.writerow(header)
    for f in instance.facts:
        row = [f.relation] + [str(a) for a in f.arguments]
        row += [""] * (max_arity - f.arity)
        if probabilities is not None:
            row.append(str(probabilities.get(f, Fraction(1))))
        writer.writerow(row)
    return buffer.getvalue()


def instance_from_csv(text: str) -> tuple[Instance, dict[Fact, Fraction]]:
    """Parse the CSV format of :func:`instance_to_csv`.

    Returns the instance together with the probability column (empty when the
    CSV has no such column).
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration as error:
        raise InstanceError("empty CSV input") from error
    has_probability = bool(header) and header[-1] == "probability"
    facts: list[Fact] = []
    probabilities: dict[Fact, Fraction] = {}
    for row in reader:
        if not row or not row[0]:
            continue
        values = row[1:-1] if has_probability else row[1:]
        arguments = tuple(value for value in values if value != "")
        f = Fact(row[0], arguments)
        facts.append(f)
        if has_probability and row[-1]:
            probabilities[f] = as_probability(Fraction(row[-1]))
    return Instance(facts), probabilities


def save_instance_csv(
    instance: Instance | ProbabilisticInstance, path: str | Path
) -> None:
    """Write an instance (or TID instance) to a CSV file."""
    if isinstance(instance, ProbabilisticInstance):
        text = instance_to_csv(instance.instance, instance.valuation())
    else:
        text = instance_to_csv(instance)
    Path(path).write_text(text)


def load_instance_csv(path: str | Path) -> ProbabilisticInstance:
    """Read a CSV file as a TID instance (probabilities default to 1)."""
    instance, probabilities = instance_from_csv(Path(path).read_text())
    return ProbabilisticInstance(instance, probabilities)


# -- DOT exports -----------------------------------------------------------------------------------


def _dot_escape(value: Any) -> str:
    return str(value).replace('"', '\\"')


def circuit_to_dot(circuit) -> str:
    """Graphviz DOT for a Boolean circuit (gates as nodes, wires as edges)."""
    from repro.booleans.circuit import GateKind

    lines = ["digraph circuit {", "  rankdir=BT;"]
    for gate_id, gate in circuit.gates():
        if gate.kind is GateKind.VAR:
            label = _dot_escape(gate.payload)
            shape = "box"
        elif gate.kind is GateKind.CONST:
            label = "1" if gate.payload else "0"
            shape = "plaintext"
        else:
            label = {GateKind.NOT: "¬", GateKind.AND: "∧", GateKind.OR: "∨"}[gate.kind]
            shape = "circle"
        suffix = ", penwidth=2" if gate_id == circuit.output else ""
        lines.append(f'  g{gate_id} [label="{label}", shape={shape}{suffix}];')
        for source in gate.inputs:
            lines.append(f"  g{source} -> g{gate_id};")
    lines.append("}")
    return "\n".join(lines)


def obdd_to_dot(obdd, root: int) -> str:
    """Graphviz DOT for the OBDD rooted at ``root`` (dashed low edges, solid high edges)."""
    lines = ["digraph obdd {", '  t0 [label="0", shape=box];', '  t1 [label="1", shape=box];']

    def name(node: int) -> str:
        return f"t{node}" if node <= 1 else f"n{node}"

    for node, variable, low, high in obdd.node_table(root):
        lines.append(f'  n{node} [label="{_dot_escape(variable)}"];')
        lines.append(f"  n{node} -> {name(low)} [style=dashed];")
        lines.append(f"  n{node} -> {name(high)};")
    lines.append("}")
    return "\n".join(lines)


def dnnf_to_dot(dnnf) -> str:
    """Graphviz DOT for a d-DNNF circuit."""
    lines = ["digraph dnnf {", "  rankdir=BT;"]
    for node_id in dnnf.reachable():
        node = dnnf.node(node_id)
        if node.kind == "lit":
            variable, positive = node.payload
            label = _dot_escape(variable) if positive else f"¬{_dot_escape(variable)}"
            shape = "box"
        elif node.kind == "const":
            label = "1" if node.payload else "0"
            shape = "plaintext"
        else:
            label = "∧" if node.kind == "and" else "∨"
            shape = "circle"
        lines.append(f'  n{node_id} [label="{label}", shape={shape}];')
        for child in node.children:
            lines.append(f"  n{child} -> n{node_id};")
    lines.append("}")
    return "\n".join(lines)


def tree_decomposition_to_dot(decomposition) -> str:
    """Graphviz DOT for a tree decomposition (bags as box nodes)."""
    lines = ["graph tree_decomposition {"]
    for node in decomposition.nodes():
        bag = ", ".join(sorted(map(str, decomposition.bag(node))))
        lines.append(f'  b{node} [label="{_dot_escape(bag)}", shape=box];')
    for node in decomposition.nodes():
        for child in decomposition.children.get(node, ()):
            lines.append(f"  b{node} -- b{child};")
    lines.append("}")
    return "\n".join(lines)
