"""Relational signatures.

A signature is a finite set of relation names with arities (Section 2 of the
paper).  Signatures are immutable and hashable so they can be shared between
instances, queries, and generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import SignatureError


@dataclass(frozen=True, order=True)
class Relation:
    """A relation symbol with a name and a positive arity."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name:
            raise SignatureError("relation name must be non-empty")
        if self.arity < 1:
            raise SignatureError(
                f"relation {self.name!r} must have arity >= 1, got {self.arity}"
            )

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Signature:
    """An immutable set of relation symbols indexed by name.

    Parameters
    ----------
    relations:
        Either :class:`Relation` objects or ``(name, arity)`` pairs.
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[Relation | tuple[str, int]]) -> None:
        by_name: dict[str, Relation] = {}
        for rel in relations:
            if not isinstance(rel, Relation):
                name, arity = rel
                rel = Relation(name, arity)
            if rel.name in by_name and by_name[rel.name] != rel:
                raise SignatureError(
                    f"relation {rel.name!r} declared twice with different arities"
                )
            by_name[rel.name] = rel
        self._relations: Mapping[str, Relation] = dict(sorted(by_name.items()))

    @classmethod
    def of(cls, **arities: int) -> "Signature":
        """Build a signature from keyword arguments, e.g. ``Signature.of(R=2, L=1)``."""
        return cls([(name, arity) for name, arity in arities.items()])

    @classmethod
    def graph(cls, name: str = "E") -> "Signature":
        """The graph signature: a single binary relation (default ``E``)."""
        return cls([(name, 2)])

    # -- container protocol -------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SignatureError(f"unknown relation {name!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return dict(self._relations) == dict(other._relations)

    def __hash__(self) -> int:
        return hash(tuple(self._relations.values()))

    def __repr__(self) -> str:
        rels = ", ".join(str(r) for r in self)
        return f"Signature({rels})"

    # -- queries ------------------------------------------------------------

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def arity(self, name: str) -> int:
        """The arity of relation ``name``."""
        return self[name].arity

    @property
    def max_arity(self) -> int:
        """The maximum arity of any relation (``arity(sigma)`` in the paper)."""
        return max(rel.arity for rel in self)

    def is_arity_two(self) -> bool:
        """True when the signature is arity-2 (all relations of arity <= 2).

        The dichotomy results of Sections 4, 5, and 8 apply to such signatures.
        """
        return self.max_arity <= 2

    def binary_relations(self) -> tuple[Relation, ...]:
        """The relations of arity exactly 2, in name order."""
        return tuple(rel for rel in self if rel.arity == 2)

    def unary_relations(self) -> tuple[Relation, ...]:
        """The relations of arity exactly 1, in name order."""
        return tuple(rel for rel in self if rel.arity == 1)

    def extend(self, relations: Iterable[Relation | tuple[str, int]]) -> "Signature":
        """A new signature with the given relations added."""
        return Signature(list(self) + list(relations))

    def restrict(self, names: Iterable[str]) -> "Signature":
        """A new signature containing only the named relations."""
        wanted = set(names)
        missing = wanted - set(self.relation_names)
        if missing:
            raise SignatureError(f"unknown relations {sorted(missing)}")
        return Signature([rel for rel in self if rel.name in wanted])


#: The plain (unlabeled) graph signature used throughout Sections 4, 5 and 8.
GRAPH_SIGNATURE = Signature.graph()
