"""Relational instances: finite sets of ground facts (Section 2 of the paper).

Instances follow the active-domain semantics: the domain of an instance is the
set of elements that occur in its facts.  A *subinstance* is any subset of the
facts.  Instances over arity-2 signatures can be viewed as (labeled) graphs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.data.signature import Relation, Signature
from repro.errors import InstanceError, SignatureError


@dataclass(frozen=True, order=True)
class Fact:
    """A ground fact ``R(a_1, ..., a_k)``.

    Domain elements can be any hashable, orderable values (we use strings and
    integers throughout the library).
    """

    relation: str
    arguments: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.arguments, tuple):
            object.__setattr__(self, "arguments", tuple(self.arguments))

    @property
    def arity(self) -> int:
        return len(self.arguments)

    def elements(self) -> tuple[Any, ...]:
        """The distinct elements occurring in this fact, in order of appearance."""
        seen: dict[Any, None] = {}
        for arg in self.arguments:
            seen.setdefault(arg, None)
        return tuple(seen)

    def rename(self, mapping: Mapping[Any, Any]) -> "Fact":
        """The fact obtained by applying ``mapping`` to every argument."""
        return Fact(self.relation, tuple(mapping.get(a, a) for a in self.arguments))

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        return f"{self.relation}({args})"


def fact(relation: str, *arguments: Any) -> Fact:
    """Convenience constructor: ``fact("R", "a", "b") == Fact("R", ("a", "b"))``."""
    return Fact(relation, tuple(arguments))


class Instance:
    """A finite set of facts over a signature.

    The signature may be given explicitly; otherwise it is inferred from the
    facts (each relation gets the arity of its first fact).  Facts are stored
    in a deterministic (sorted) order so that iteration, variable orders, and
    generated lineages are reproducible.
    """

    __slots__ = ("_facts", "_signature", "_domain", "_by_relation", "_fingerprint", "_position_index")

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        signature: Signature | None = None,
    ) -> None:
        fact_set = set(facts)
        for f in fact_set:
            if not isinstance(f, Fact):
                raise InstanceError(f"expected Fact, got {type(f).__name__}")
        if signature is None:
            arities: dict[str, int] = {}
            for f in fact_set:
                prev = arities.setdefault(f.relation, f.arity)
                if prev != f.arity:
                    raise SignatureError(
                        f"relation {f.relation!r} used with arities {prev} and {f.arity}"
                    )
            signature = Signature(sorted(arities.items()))
        else:
            for f in fact_set:
                if f.relation not in signature:
                    raise SignatureError(
                        f"fact {f} uses relation not in signature {signature!r}"
                    )
                if signature.arity(f.relation) != f.arity:
                    raise SignatureError(
                        f"fact {f} has arity {f.arity}, signature says "
                        f"{signature.arity(f.relation)}"
                    )
        self._signature = signature
        self._facts: tuple[Fact, ...] = tuple(
            sorted(fact_set, key=lambda f: (f.relation, _sort_key(f.arguments)))
        )
        domain: dict[Any, None] = {}
        by_relation: dict[str, list[Fact]] = {}
        for f in self._facts:
            for a in f.arguments:
                domain.setdefault(a, None)
            by_relation.setdefault(f.relation, []).append(f)
        self._domain = tuple(sorted(domain, key=_element_key))
        self._by_relation = {rel: tuple(fs) for rel, fs in by_relation.items()}
        self._fingerprint: str | None = None
        self._position_index: dict[str, dict[tuple[int, Any], tuple[Fact, ...]]] = {}

    # -- basic protocol -----------------------------------------------------

    def __len__(self) -> int:
        """The size |I| of the instance, i.e. its number of facts."""
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __contains__(self, f: object) -> bool:
        return f in set(self._facts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._facts == other._facts and self._signature == other._signature

    def __hash__(self) -> int:
        return hash((self._facts, self._signature))

    def __repr__(self) -> str:
        return f"Instance({len(self)} facts, domain size {len(self._domain)})"

    def __str__(self) -> str:
        return "{" + ", ".join(str(f) for f in self._facts) + "}"

    # -- accessors ----------------------------------------------------------

    @property
    def signature(self) -> Signature:
        return self._signature

    @property
    def facts(self) -> tuple[Fact, ...]:
        return self._facts

    @property
    def domain(self) -> tuple[Any, ...]:
        """The active domain: all elements occurring in facts, sorted."""
        return self._domain

    @property
    def domain_size(self) -> int:
        return len(self._domain)

    def facts_of(self, relation: str) -> tuple[Fact, ...]:
        """All facts of the given relation (empty tuple if none)."""
        return self._by_relation.get(relation, ())

    def facts_containing(self, element: Any) -> tuple[Fact, ...]:
        """All facts in which ``element`` occurs."""
        return tuple(f for f in self._facts if element in f.arguments)

    # -- content fingerprint and hash indexes --------------------------------

    @property
    def fingerprint(self) -> str:
        """A content fingerprint of the instance (SHA-256 hex digest).

        Two instances have the same fingerprint exactly when they have the
        same facts and the same signature; unlike :func:`hash` it is stable
        across processes, which makes it usable as a persistent cache key.
        :class:`repro.engine.CompilationEngine` keys all of its per-instance
        caches on this value, so any derived instance (``with_facts``,
        ``rename``, ``subinstance``, ...) naturally invalidates them.

        Domain elements enter the digest as ``(type name, repr)`` — the same
        rendering that orders facts deterministically.  This requires ``repr``
        to be faithful to equality for domain elements (equal iff equal
        repr), which holds for the strings, ints, and tuples used throughout
        the library; custom element types with identity-based equality and a
        non-injective ``repr`` would alias fingerprints and must not be used
        as cache-keyed domain elements.
        """
        if self._fingerprint is None:
            hasher = hashlib.sha256()
            for relation in self._signature:
                hasher.update(f"{relation.name}/{relation.arity};".encode())
            hasher.update(b"|")
            for f in self._facts:
                hasher.update(f.relation.encode())
                for argument in f.arguments:
                    kind, rendering = _element_key(argument)
                    hasher.update(b"\x00" + kind.encode() + b"\x1f" + rendering.encode())
                hasher.update(b"\x01")
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    def facts_with_value(self, relation: str, position: int, value: Any) -> tuple[Fact, ...]:
        """All facts of ``relation`` whose argument at ``position`` is ``value``.

        Backed by a per-relation, per-position hash index built lazily on
        first use (the instance is immutable, so the index never goes stale).
        """
        return self._index_for(relation).get((position, value), ())

    def facts_matching(self, relation: str, bindings: Mapping[int, Any]) -> tuple[Fact, ...]:
        """Facts of ``relation`` agreeing with ``bindings`` (position -> value).

        With an empty binding this is :meth:`facts_of`; otherwise the most
        selective bound position is probed through the hash index and only its
        bucket is filtered on the remaining positions, so enumeration joins on
        already-bound variables cost O(bucket) rather than O(|relation|).
        """
        if not bindings:
            return self.facts_of(relation)
        index = self._index_for(relation)
        best: tuple[Fact, ...] | None = None
        for position, value in bindings.items():
            bucket = index.get((position, value), ())
            if not bucket:
                return ()
            if best is None or len(bucket) < len(best):
                best = bucket
        if len(bindings) == 1:
            return best
        return tuple(
            f
            for f in best
            if all(f.arguments[position] == value for position, value in bindings.items())
        )

    def _index_for(self, relation: str) -> dict[tuple[int, Any], tuple[Fact, ...]]:
        table = self._position_index.get(relation)
        if table is None:
            buckets: dict[tuple[int, Any], list[Fact]] = {}
            for f in self._by_relation.get(relation, ()):
                for position, value in enumerate(f.arguments):
                    buckets.setdefault((position, value), []).append(f)
            table = {key: tuple(fs) for key, fs in buckets.items()}
            self._position_index[relation] = table
        return table

    # -- construction -------------------------------------------------------

    def with_facts(self, facts: Iterable[Fact]) -> "Instance":
        """A new instance with the given facts added."""
        return Instance(list(self._facts) + list(facts), self._signature)

    def subinstance(self, facts: Iterable[Fact]) -> "Instance":
        """The subinstance consisting of the given subset of facts.

        Raises :class:`InstanceError` if a fact is not part of this instance.
        """
        chosen = list(facts)
        own = set(self._facts)
        for f in chosen:
            if f not in own:
                raise InstanceError(f"{f} is not a fact of this instance")
        return Instance(chosen, self._signature)

    def restrict_domain(self, elements: Iterable[Any]) -> "Instance":
        """The subinstance of facts whose arguments all lie in ``elements``."""
        allowed = set(elements)
        return Instance(
            [f for f in self._facts if all(a in allowed for a in f.arguments)],
            self._signature,
        )

    def rename(self, mapping: Mapping[Any, Any] | Callable[[Any], Any]) -> "Instance":
        """The instance obtained by renaming domain elements.

        ``mapping`` may be a dict (missing elements are kept) or a callable.
        """
        if callable(mapping) and not isinstance(mapping, Mapping):
            mapper: Callable[[Any], Any] = mapping
            table = {a: mapper(a) for a in self._domain}
        else:
            table = {a: mapping.get(a, a) for a in self._domain}
        return Instance([f.rename(table) for f in self._facts], self._signature)

    def union(self, other: "Instance") -> "Instance":
        """The union of two instances over a merged signature."""
        merged = self._signature.extend(other.signature)
        return Instance(list(self._facts) + list(other.facts), merged)

    def disjoint_union(self, other: "Instance", tags: tuple[str, str] = ("l", "r")) -> "Instance":
        """The disjoint union: domains are made disjoint by tagging elements."""
        left = self.rename(lambda a: (tags[0], a))
        right = other.rename(lambda a: (tags[1], a))
        return left.union(right)

    # -- subsets ------------------------------------------------------------

    def all_subinstances(self) -> Iterator["Instance"]:
        """All 2^|I| subinstances.  Only usable on small instances."""
        n = len(self._facts)
        if n > 25:
            raise InstanceError(
                f"refusing to enumerate 2^{n} subinstances; instance too large"
            )
        for mask in range(1 << n):
            chosen = [self._facts[i] for i in range(n) if mask >> i & 1]
            yield Instance(chosen, self._signature)

    def is_subinstance_of(self, other: "Instance") -> bool:
        return set(self._facts) <= set(other.facts)


def _sort_key(arguments: Sequence[Any]) -> tuple:
    return tuple(_element_key(a) for a in arguments)


def _element_key(element: Any) -> tuple[str, str]:
    """A total order on heterogeneous domain elements (by type name, then repr)."""
    return (type(element).__name__, repr(element))


def graph_instance(
    edges: Iterable[tuple[Any, Any]],
    relation: str = "E",
    symmetric: bool = True,
) -> Instance:
    """Build a graph instance from an edge list.

    Following the paper's convention, graphs are undirected and simple: by
    default each edge ``(u, v)`` produces both ``E(u, v)`` and ``E(v, u)`` and
    self-loops are rejected.  Set ``symmetric=False`` to store directed edges.
    """
    facts: list[Fact] = []
    for u, v in edges:
        if u == v:
            raise InstanceError(f"self-loop on {u!r} not allowed in a graph instance")
        facts.append(Fact(relation, (u, v)))
        if symmetric:
            facts.append(Fact(relation, (v, u)))
    return Instance(facts, Signature([(relation, 2)]))
