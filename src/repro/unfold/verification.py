"""Verification of unfoldings (Definitions 9.2, 9.4 and Lemma 9.5).

These checks validate the output of :func:`repro.unfold.unfolding.unfold_instance`:

* the last-element map is a homomorphism from I' to I, bijective on facts
  (Definition 9.2);
* the unfolding *respects* the query: the preimage of every match of q on I
  is a match of q on I' (Definition 9.4);
* the lineage is preserved (Lemma 9.5) — for monotone UCQ≠ queries this is
  equivalent to the minimal matches corresponding under the fact bijection,
  which we check directly (no exponential enumeration needed).
"""

from __future__ import annotations

from repro.data.homomorphism import is_homomorphism
from repro.data.instance import Fact, Instance
from repro.queries.cq import ConjunctiveQuery
from repro.queries.matching import minimal_matches, satisfies
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq
from repro.unfold.unfolding import Unfolding


def is_valid_unfolding(unfolding: Unfolding) -> bool:
    """Check Definition 9.2: homomorphism bijective on facts."""
    if len(unfolding.unfolded) != len(unfolding.original):
        return False
    if set(unfolding.fact_map.keys()) != set(unfolding.original.facts):
        return False
    if set(unfolding.fact_map.values()) != set(unfolding.unfolded.facts):
        return False
    mapping = dict(unfolding.homomorphism)
    if not is_homomorphism(mapping, unfolding.unfolded, unfolding.original):
        return False
    # The homomorphism must map each unfolded fact onto its original fact.
    for original, image in unfolding.fact_map.items():
        mapped = Fact(image.relation, tuple(mapping[a] for a in image.arguments))
        if mapped != original:
            return False
    return True


def respects_query(
    unfolding: Unfolding, query: UnionOfConjunctiveQueries | ConjunctiveQuery
) -> bool:
    """Check Definition 9.4: preimages of matches of q on I are matches on I'."""
    query = as_ucq(query)
    for match in minimal_matches(query, unfolding.original):
        preimage = [unfolding.unfolded_fact(f) for f in match]
        world = Instance(preimage, unfolding.unfolded.signature)
        if not satisfies(world, query):
            return False
    return True


def lineage_preserved(
    unfolding: Unfolding, query: UnionOfConjunctiveQueries | ConjunctiveQuery
) -> bool:
    """Check Lemma 9.5: q has the same lineage on I and I'.

    For monotone UCQ≠ queries the lineage is determined by the set of minimal
    matches, so it suffices to compare the minimal matches of q on I and on
    I' through the fact bijection.
    """
    query = as_ucq(query)
    original_matches = {
        frozenset(match) for match in minimal_matches(query, unfolding.original)
    }
    unfolded_matches = {
        frozenset(unfolding.original_fact(f) for f in match)
        for match in minimal_matches(query, unfolding.unfolded)
    }
    return original_matches == unfolded_matches


def verify_unfolding(
    unfolding: Unfolding, query: UnionOfConjunctiveQueries | ConjunctiveQuery
) -> dict[str, bool]:
    """Run all checks and return a report (used by examples and tests)."""
    return {
        "valid_unfolding": is_valid_unfolding(unfolding),
        "respects_query": respects_query(unfolding, query),
        "lineage_preserved": lineage_preserved(unfolding, query),
        "tree_depth_within_arity": unfolding.tree_depth_bound
        <= unfolding.original.signature.max_arity,
    }
