"""The Section 9 unfolding technique: lineage-preserving treewidth reduction."""

from repro.unfold.unfolding import Unfolding, unfold_instance
from repro.unfold.verification import (
    is_valid_unfolding,
    lineage_preserved,
    respects_query,
    verify_unfolding,
)

__all__ = [
    "Unfolding",
    "is_valid_unfolding",
    "lineage_preserved",
    "respects_query",
    "unfold_instance",
    "verify_unfolding",
]
