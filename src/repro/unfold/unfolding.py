"""The unfolding construction of Section 9 (Definition 9.2, Theorem 9.7).

An *unfolding* of an instance I is an instance I' with a homomorphism to I
that is bijective on facts; when the unfolding *respects* a query q (preimages
of matches are matches), q has literally the same lineage on I and I'
(Lemma 9.5), so probability evaluation can be done on I' instead.

Theorem 9.7: for a ranked inversion-free UCQ q and a ranked instance I, the
construction below produces an unfolding that respects q and has tree-depth at
most arity(sigma) — hence bounded pathwidth and treewidth — explaining the
tractability of inversion-free (safe) queries through the instance-based
route of the paper.

The construction distinguishes each element of each fact by the tuple of the
elements at the preceding positions in the relation's attribute order (the
inversion-free expression's order), as in Proposition 5 of [36].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.data.instance import Fact, Instance
from repro.errors import UnfoldingError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.properties import attribute_orders, is_ranked_instance, is_ranked_query
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq
from repro.structure.tree_depth import EliminationForest


@dataclass
class Unfolding:
    """The result of unfolding an instance for a query.

    Attributes
    ----------
    original:
        The input instance I.
    unfolded:
        The unfolding I'; its domain elements are tuples of original elements
        (prefixes along the attribute orders).
    fact_map:
        The bijection from original facts to unfolded facts.
    homomorphism:
        The homomorphism from dom(I') to dom(I) (each tuple maps to its last
        element).
    """

    original: Instance
    unfolded: Instance
    fact_map: dict[Fact, Fact]
    homomorphism: dict[Any, Any]

    def unfolded_fact(self, original_fact: Fact) -> Fact:
        return self.fact_map[original_fact]

    def original_fact(self, unfolded_fact: Fact) -> Fact:
        inverse = {v: k for k, v in self.fact_map.items()}
        return inverse[unfolded_fact]

    def elimination_forest(self) -> EliminationForest:
        """The prefix-order elimination forest of the unfolded instance.

        Its height is at most the maximum arity of the signature, witnessing
        the tree-depth bound of Theorem 9.7.
        """
        parent: dict[Any, Any] = {}
        domain = set(self.unfolded.domain)
        for element in domain:
            if not isinstance(element, tuple) or len(element) <= 1:
                parent[element] = None
                continue
            candidate = element[:-1]
            while len(candidate) >= 1 and candidate not in domain:
                candidate = candidate[:-1]
            parent[element] = candidate if len(candidate) >= 1 and candidate in domain else None
        return EliminationForest(parent)

    @property
    def tree_depth_bound(self) -> int:
        """The height of the prefix elimination forest (<= arity of the signature)."""
        return self.elimination_forest().height


def unfold_instance(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery, instance: Instance
) -> Unfolding:
    """Apply the Theorem 9.7 unfolding for a ranked inversion-free UCQ.

    Raises :class:`UnfoldingError` if the query is not ranked / inversion-free
    or the instance is not ranked (apply :mod:`repro.queries.ranking` first).
    """
    query = as_ucq(query)
    if not is_ranked_query(query):
        raise UnfoldingError("the query is not ranked; apply the ranking transformation first")
    if not is_ranked_instance(instance):
        raise UnfoldingError("the instance is not ranked; apply the ranking transformation first")
    try:
        orders = attribute_orders(query)
    except Exception as error:  # QueryError
        raise UnfoldingError(f"the query is not inversion-free: {error}") from error

    fact_map: dict[Fact, Fact] = {}
    homomorphism: dict[Any, Any] = {}
    for f in instance:
        order = orders.get(f.relation, tuple(range(f.arity)))
        if len(order) != f.arity:
            raise UnfoldingError(
                f"attribute order for {f.relation!r} does not match the fact arity"
            )
        # Build, for each position, the tuple of elements at the preceding
        # positions (inclusive) in the attribute order.
        prefix: list[Any] = []
        tuple_at_position: dict[int, tuple] = {}
        for position in order:
            prefix.append(f.arguments[position])
            tuple_at_position[position] = tuple(prefix)
        new_arguments = tuple(tuple_at_position[i] for i in range(f.arity))
        new_fact = Fact(f.relation, new_arguments)
        fact_map[f] = new_fact
        for argument in new_arguments:
            homomorphism[argument] = argument[-1]
    unfolded = Instance(fact_map.values(), instance.signature)
    if len(unfolded) != len(instance):
        raise UnfoldingError("unfolding collapsed two distinct facts; the instance is degenerate")
    return Unfolding(
        original=instance, unfolded=unfolded, fact_map=fact_map, homomorphism=homomorphism
    )
