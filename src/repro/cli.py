"""Command-line interface for the library.

Four subcommands cover the everyday workflow on files produced by
:mod:`repro.data.io` (JSON or CSV instances, optionally with probabilities):

``info``
    Structural report: size, domain, signature, treewidth, pathwidth,
    tree-depth.
``lineage``
    Compile the lineage of a UCQ≠ (given in the textual syntax of
    :func:`repro.queries.parser.parse_ucq`) and report circuit / OBDD /
    d-DNNF sizes, optionally emitting Graphviz DOT.
``probability``
    Exact (or approximate) probability evaluation of a UCQ≠ on a TID file.
``batch``
    Probabilities of several queries on one TID file through a single
    :class:`repro.engine.CompilationEngine` session, so decompositions and
    lineage artifacts are shared across the whole workload.
``convert``
    Convert between the JSON and CSV instance formats.
``store``
    Maintenance of a persistent artifact store directory
    (:mod:`repro.store`): ``stats``, ``verify`` (optionally with
    ``--repair``), ``gc``, and ``quarantine-list``.

The ``lineage`` and ``probability`` subcommands route their compilations
through the process-wide default engine as well, which makes repeated
invocations within one process (e.g. from tests) benefit from the cache.
``--store PATH`` on ``lineage``/``probability``/``batch`` opens a
persistent artifact store below the engine's caches, so a *second process*
answering the same workload starts from the compiled artifacts instead of
recompiling.

Run ``python -m repro.cli --help`` (or the ``repro`` console script) for
details; every subcommand prints to stdout and returns a conventional exit
code, so the CLI is scriptable.

Exit codes distinguish the typed failures a wrapper script wants to branch
on: 0 success, 1 any other library error, 2 usage errors (argparse owns
it), 3 the query is unsafe (:class:`~repro.errors.UnsafeQueryError` under a
lifted method), 4 the ``--timeout`` deadline passed
(:class:`~repro.errors.DeadlineExceeded`), 5 a ``--budget-*`` cap was
exhausted on every route (:class:`~repro.errors.BudgetExceeded`).
"""

from __future__ import annotations

import argparse
import json
import sys
from fractions import Fraction
from pathlib import Path
from typing import Sequence

from repro.data.gaifman import instance_tree_depth
from repro.data.io import (
    circuit_to_dot,
    dnnf_to_dot,
    instance_to_csv,
    instance_to_dict,
    load_instance_csv,
    load_tid,
    obdd_to_dot,
    save_instance,
    save_instance_csv,
    tid_to_dict,
)
from repro.data.tid import ProbabilisticInstance
from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    ReproError,
    UnsafeQueryError,
)

# Scriptable exit codes (argparse itself exits with 2 on usage errors).
EXIT_FAILURE = 1
EXIT_UNSAFE = 3
EXIT_DEADLINE = 4
EXIT_BUDGET = 5


def _load(path: str) -> ProbabilisticInstance:
    """Load a JSON or CSV file as a TID instance (probabilities default to 1)."""
    location = Path(path)
    if not location.exists():
        raise ReproError(f"no such file: {path}")
    if location.suffix.lower() == ".csv":
        return load_instance_csv(location)
    return load_tid(location)


def _add_instance_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("instance", help="path to a JSON or CSV instance file")


def _command_info(arguments: argparse.Namespace) -> int:
    from repro.engine import default_engine

    tid = _load(arguments.instance)
    instance = tid.instance
    # One engine session: the Gaifman graph, decompositions, and the fused
    # tree encoding are each computed once and shared across the report.
    engine = default_engine()
    print(f"facts: {len(instance)}")
    print(f"domain size: {instance.domain_size}")
    relations = ", ".join(
        f"{relation.name}/{relation.arity}" for relation in instance.signature
    )
    print(f"signature: {relations}")
    print(f"treewidth (upper bound): {engine.tree_decomposition_of(instance).width}")
    print(f"pathwidth (upper bound): {engine.path_decomposition_of(instance).width}")
    print(f"tree-depth: {instance_tree_depth(instance)}")
    encoding = engine.tree_encoding_of(instance)
    print(f"tree encoding: {len(encoding)} nodes, width {encoding.width}")
    uncertain = sum(1 for f in instance.facts if tid.probability_of(f) != 1)
    print(f"uncertain facts: {uncertain}")
    return 0


def _command_lineage(arguments: argparse.Namespace) -> int:
    from repro.engine import CompilationEngine, default_engine
    from repro.provenance.compile_obdd import compile_query_to_obdd
    from repro.provenance.lineage import lineage_of
    from repro.queries.parser import parse_ucq

    if arguments.store is not None:
        # A persistent store is a per-invocation decision; the process-wide
        # default engine stays store-less.
        engine = CompilationEngine(store=arguments.store)
    else:
        engine = default_engine()
    tid = _load(arguments.instance)
    query = parse_ucq(arguments.query)
    lineage = lineage_of(query, tid.instance, engine=engine)
    circuit = lineage.to_circuit()
    compiled = compile_query_to_obdd(query, tid.instance, engine=engine)
    dnnf = compiled.to_dnnf()
    # One fused sweep serves size, width, and model count together.
    stats = compiled.stats()
    print(f"query: {query}")
    print(f"minimal matches (DNF clauses): {lineage.clause_count}")
    print(f"circuit gates: {circuit.size}")
    print(f"OBDD size: {stats.size}  width: {stats.width}  models: {stats.model_count}")
    print(f"d-DNNF nodes: {dnnf.size}")
    if arguments.dot == "circuit":
        print(circuit_to_dot(circuit))
    elif arguments.dot == "obdd":
        print(obdd_to_dot(compiled.manager, compiled.root))
    elif arguments.dot == "dnnf":
        print(dnnf_to_dot(dnnf))
    return 0


def _command_probability(arguments: argparse.Namespace) -> int:
    from repro.engine import CompilationEngine, ProbabilityBounds, default_engine
    from repro.probability.approximation import approximate_probability
    from repro.probability.evaluation import probability
    from repro.queries.parser import parse_ucq
    from repro.resilience import ResourceBudget

    tid = _load(arguments.instance)
    query = parse_ucq(arguments.query)
    if arguments.approximate:
        result = approximate_probability(
            query, tid, epsilon=arguments.epsilon, delta=arguments.delta
        )
        print(f"estimate: {result.estimate:.6f} ({result.method}, {result.samples} samples)")
        return 0
    budget = None
    if (
        arguments.timeout is not None
        or arguments.budget_nodes is not None
        or arguments.budget_rows is not None
    ):
        budget = ResourceBudget(
            node_limit=arguments.budget_nodes,
            row_limit=arguments.budget_rows,
            timeout=arguments.timeout,
        )
    if arguments.degrade or arguments.store is not None:
        # Degradation and the persistent store are engine-construction
        # decisions (the process-wide default engine stays strict and
        # store-less), so opting in gets a private session.
        engine = CompilationEngine(
            degradation="karp_luby" if arguments.degrade else None,
            store=arguments.store,
        )
    else:
        engine = default_engine()
    if arguments.explain:
        decision = engine.choose_route(query, tid)
        print(f"route: {decision.method} ({decision.reason})")
        print(f"liftable: {decision.liftable}  facts: {decision.instance_facts}")
        for route, seconds in decision.estimates:
            print(f"estimate[{route}]: {seconds:.6f}s")
        if decision.infeasible:
            print(f"infeasible: {', '.join(decision.infeasible)}")
    value = probability(query, tid, method=arguments.method, engine=engine, budget=budget)
    if arguments.explain and engine.last_decision is not None:
        walked = engine.last_decision
        for attempt in walked.attempts:
            outcome = "ok" if attempt.succeeded else attempt.error
            print(f"attempt[{attempt.route}]: {outcome} ({attempt.seconds:.6f}s)")
    if isinstance(value, ProbabilityBounds):
        print(
            f"probability in [{float(value.lower):.6f}, {float(value.upper):.6f}]"
            f" (degraded: {value.method}, estimate {value.estimate:.6f},"
            f" {value.samples} samples)"
        )
    elif arguments.method in ("obdd_float", "columnar_float"):
        print(f"probability: {value:.6f} (float fast path)")
    else:
        print(f"probability: {value} (= {float(value):.6f})")
    return 0


def _command_batch(arguments: argparse.Namespace) -> int:
    from repro.engine import CompilationEngine, ParallelEngine
    from repro.queries.parser import parse_ucq

    if arguments.workers < 1:
        raise ReproError(f"--workers must be at least 1, got {arguments.workers}")
    tid = _load(arguments.instance)
    queries = [parse_ucq(text) for text in arguments.query]
    if arguments.workers > 1:
        with ParallelEngine(workers=arguments.workers, store=arguments.store) as parallel:
            values = parallel.probability_many(queries, tid, method=arguments.method)
            report = parallel.last_report
    else:
        engine = CompilationEngine(store=arguments.store)
        values = engine.probability_many(queries, tid, method=arguments.method)
        report = None
    for text, value in zip(arguments.query, values):
        print(f"{text}: {value} (= {float(value):.6f})")
    if arguments.stats:
        if report is not None:
            print(f"workers: {report.workers}  shard sizes: {list(report.shard_sizes)}")
            for worker, stats in enumerate(report.worker_stats):
                summary = ", ".join(f"{name}: {value}" for name, value in stats.items())
                print(f"worker[{worker}]: {summary}")
            merged = report.stats
            routes = report.route_mix
        else:
            merged = engine.cache_info()
            routes = engine.route_mix()
        for name, stats in merged.items():
            print(f"cache[{name}]: {stats}")
        if routes:
            summary = ", ".join(
                f"{route}: {count}" for route, count in sorted(routes.items())
            )
            print(f"routes: {summary}")
    return 0


def _command_convert(arguments: argparse.Namespace) -> int:
    tid = _load(arguments.instance)
    target = Path(arguments.output)
    if target.suffix.lower() == ".csv":
        save_instance_csv(tid, target)
    elif target.suffix.lower() == ".json":
        save_instance(tid, target)
    else:
        raise ReproError(f"unknown output format for {target.name!r} (use .json or .csv)")
    print(f"wrote {target}")
    return 0


def _command_show(arguments: argparse.Namespace) -> int:
    tid = _load(arguments.instance)
    if arguments.format == "json":
        print(json.dumps(tid_to_dict(tid), indent=2, sort_keys=True))
    else:
        print(instance_to_csv(tid.instance, tid.valuation()), end="")
    return 0


def _build_repair_hook(instance_paths: Sequence[str]):
    """The ``store verify --repair`` recompile hook.

    Damaged entries are re-derived from the given source instance files when
    the entry's metadata names one of their fingerprints (columnar artifacts
    and tree encodings) or needs no instance at all (lifted plans); anything
    else returns ``None`` and the sweep deletes the entry with a logged
    reason.  The repair engine is deliberately store-less: the sweep holds
    the store's exclusive lock, and re-derivation must not re-enter it.
    """
    from repro.engine import CompilationEngine
    from repro.queries.parser import parse_ucq
    from repro.store import CODEC_COLUMNAR, CODEC_PICKLE

    engine = CompilationEngine()
    instances = {}
    for path in instance_paths:
        tid = _load(path)
        instances[tid.instance.fingerprint] = tid.instance

    def recompile(meta: dict) -> "tuple[int, object] | None":
        kind = meta.get("kind")
        try:
            if kind == "columnar":
                instance = instances.get(meta.get("instance"))
                if instance is None:
                    return None
                query = parse_ucq(str(meta["query"]))
                artifact = engine.columnar(
                    query, instance, use_path_decomposition=bool(meta.get("use_path"))
                )
                return CODEC_COLUMNAR, artifact
            if kind == "lifted_plan":
                query = parse_ucq(str(meta["query"]))
                return CODEC_PICKLE, engine.lifted_plan(query)
            if kind == "tree_encoding":
                instance = instances.get(meta.get("instance"))
                if instance is None:
                    return None
                encoding = engine.tree_encoding_of(instance)
                return CODEC_PICKLE, (encoding.nodes, encoding.root)
        except ReproError:
            return None
        return None

    return recompile


def _command_store(arguments: argparse.Namespace) -> int:
    from repro.store import ArtifactStore

    store = ArtifactStore(arguments.root)
    action = arguments.store_command
    if action == "stats":
        for name, value in store.stats().as_dict().items():
            print(f"{name}: {value}")
        return 0
    if action == "quarantine-list":
        records = store.quarantine_list()
        if not records:
            print("quarantine is empty")
            return 0
        for record in records:
            print(f"{record.name}  key={record.key or '?'}  reason: {record.reason}")
        return 0
    if action == "gc":
        removed = store.gc(
            max_bytes=arguments.max_bytes,
            max_age_seconds=arguments.max_age,
            clear_quarantine=arguments.clear_quarantine,
        )
        print(f"evicted {len(removed)} entries")
        for key in removed:
            print(f"  {key}")
        return 0
    # verify [--repair [--instance FILE ...]]
    recompile = _build_repair_hook(arguments.instance or []) if arguments.repair else None
    report = store.verify(recompile=recompile)
    print(f"checked: {report.checked}  ok: {report.ok}  damaged: {len(report.damaged)}")
    for key, reason in report.damaged:
        print(f"damaged {key}: {reason}")
    for key in report.quarantined:
        print(f"quarantined {key}")
    for key in report.repaired:
        print(f"repaired {key}")
    for key, reason in report.deleted:
        print(f"deleted {key}: {reason}")
    if arguments.repair:
        # Repair resolves every damaged entry (rewritten in place or deleted
        # with its reason above); failure here means damage is still on disk.
        return 0 if report.clean else EXIT_FAILURE
    return 0 if not report.damaged else EXIT_FAILURE


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` command."""
    from repro.probability.evaluation import METHOD_NAMES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tractable lineages on treelike instances: CLI front-end",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="structural report on an instance file")
    _add_instance_argument(info)
    info.set_defaults(handler=_command_info)

    lineage = subparsers.add_parser("lineage", help="compile and measure query lineage")
    _add_instance_argument(lineage)
    lineage.add_argument("--query", required=True, help="UCQ≠ in textual syntax")
    lineage.add_argument(
        "--dot",
        choices=["circuit", "obdd", "dnnf"],
        default=None,
        help="also print a Graphviz DOT rendering of the chosen representation",
    )
    lineage.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent artifact store directory (created on first use)",
    )
    lineage.set_defaults(handler=_command_lineage)

    prob = subparsers.add_parser("probability", help="probability of a UCQ≠ on a TID file")
    _add_instance_argument(prob)
    prob.add_argument("--query", required=True, help="UCQ≠ in textual syntax")
    prob.add_argument("--method", default="auto", choices=list(METHOD_NAMES))
    prob.add_argument(
        "--explain",
        action="store_true",
        help="print the dichotomy router's decision (liftability, cost estimates, gated routes)",
    )
    prob.add_argument("--approximate", action="store_true", help="use Karp-Luby sampling")
    prob.add_argument("--epsilon", type=float, default=0.05)
    prob.add_argument("--delta", type=float, default=0.05)
    prob.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline for the whole evaluation (exit code 4 when exceeded)",
    )
    prob.add_argument(
        "--budget-nodes",
        type=int,
        default=None,
        metavar="N",
        help="cap OBDD node allocations per route attempt (exit code 5 when every route blows it)",
    )
    prob.add_argument(
        "--budget-rows",
        type=int,
        default=None,
        metavar="N",
        help="cap lifted-executor row enumerations per route attempt",
    )
    prob.add_argument(
        "--degrade",
        action="store_true",
        help="when every exact route fails under --budget-*/--timeout, return labelled"
        " Karp-Luby bounds instead of exiting with an error (method=auto only)",
    )
    prob.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent artifact store directory: compiled artifacts survive the process"
        " and warm-start the next invocation",
    )
    prob.set_defaults(handler=_command_probability)

    batch = subparsers.add_parser(
        "batch",
        help="probabilities of several UCQ≠ on one TID file through a shared engine session",
    )
    _add_instance_argument(batch)
    batch.add_argument(
        "--query",
        action="append",
        required=True,
        help="UCQ≠ in textual syntax (repeatable; all queries share one compilation session)",
    )
    batch.add_argument("--method", default="auto", choices=list(METHOD_NAMES))
    batch.add_argument(
        "--stats", action="store_true", help="also print the engine's cache hit/miss statistics"
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the batch (>1 shards the workload through ParallelEngine)",
    )
    batch.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent artifact store directory shared by all workers",
    )
    batch.set_defaults(handler=_command_batch)

    convert = subparsers.add_parser("convert", help="convert between JSON and CSV formats")
    _add_instance_argument(convert)
    convert.add_argument("--output", required=True, help="target file (.json or .csv)")
    convert.set_defaults(handler=_command_convert)

    store = subparsers.add_parser(
        "store", help="maintain a persistent artifact store directory"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_commands.add_parser(
        "stats", help="disk occupancy and traffic counters"
    )
    store_stats.add_argument("root", help="store directory")
    store_verify = store_commands.add_parser(
        "verify",
        help="re-verify every entry; damage is quarantined (exit code 1 when found)",
    )
    store_verify.add_argument("root", help="store directory")
    store_verify.add_argument(
        "--repair",
        action="store_true",
        help="re-derive damaged entries from --instance files when possible,"
        " delete them with a logged reason otherwise",
    )
    store_verify.add_argument(
        "--instance",
        action="append",
        default=None,
        metavar="FILE",
        help="source instance file for --repair (repeatable; matched by fingerprint)",
    )
    store_gc = store_commands.add_parser(
        "gc", help="evict entries by age and total size (oldest first)"
    )
    store_gc.add_argument("root", help="store directory")
    store_gc.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="evict oldest entries until the store fits in N bytes",
    )
    store_gc.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="evict entries older than SECONDS",
    )
    store_gc.add_argument(
        "--clear-quarantine", action="store_true",
        help="also empty the quarantine directory",
    )
    store_quarantine = store_commands.add_parser(
        "quarantine-list", help="list quarantined entries and their reasons"
    )
    store_quarantine.add_argument("root", help="store directory")
    store.set_defaults(handler=_command_store)

    show = subparsers.add_parser("show", help="print an instance file to stdout")
    _add_instance_argument(show)
    show.add_argument("--format", choices=["json", "csv"], default="json")
    show.set_defaults(handler=_command_show)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: parse arguments, dispatch, report errors on stderr."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except UnsafeQueryError as error:
        print(f"error: unsafe query: {error}", file=sys.stderr)
        return EXIT_UNSAFE
    except DeadlineExceeded as error:
        print(f"error: deadline exceeded: {error}", file=sys.stderr)
        return EXIT_DEADLINE
    except BudgetExceeded as error:
        print(f"error: budget exhausted: {error}", file=sys.stderr)
        return EXIT_BUDGET
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_FAILURE


if __name__ == "__main__":  # pragma: no cover - exercised through main() in tests
    sys.exit(main())
