"""The :class:`CompilationEngine` session object (see the package docstring).

The engine is deliberately a plain in-process object: it owns ordinary
dictionaries behind content fingerprints, so a web worker, a benchmark, or a
CLI invocation can hold one engine per process (or one per tenant) and get
memoization without any global state.  A module-level :func:`default_engine`
is provided for the common single-session case.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from fractions import Fraction
from pathlib import Path
from time import perf_counter
from typing import Iterable, Sequence

from repro.booleans.columnar import ColumnarOBDD
from repro.booleans.dnnf import DNNF
from repro.data.gaifman import gaifman_graph
from repro.data.instance import Fact, Instance
from repro.data.tid import ProbabilisticInstance
from repro.engine.resilience import (
    DEGRADED_ROUTE,
    FAILOVER_ORDER,
    ProbabilityBounds,
    ResourceBudget,
    activate,
    active_budget,
    degraded_probability_bounds,
)
from repro.engine.router import (
    CIRCUIT_ROUTES,
    ROUTE_PREFERENCE,
    RouteAttempt,
    RouteCostModel,
    RouteDecision,
)
from repro.errors import (
    CompilationError,
    DeadlineExceeded,
    ProbabilityError,
    ReproError,
    UnsafeQueryError,
)
from repro.probability.lifted import LiftedPlan, execute_plan, try_lifted_plan
from repro.provenance.compile_obdd import CompiledOBDD, compile_lineage_to_obdd
from repro.provenance.lineage import MonotoneDNFLineage, lineage_of
from repro.provenance.tree_encoding import TreeEncoding, fused_tree_encoding
from repro.provenance.variable_orders import (
    default_fact_order,
    fact_order_from_path_decomposition,
    fact_order_from_tree_decomposition,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq
from repro.store import (
    ArtifactStore,
    canonical_query_text,
    columnar_key,
    encoding_key,
    plan_key,
)
from repro.structure.elimination import EliminationSweep, best_heuristic_sweep
from repro.structure.graph import Graph
from repro.structure.path_decomposition import PathDecomposition, path_decomposition
from repro.structure.tree_decomposition import TreeDecomposition, decomposition_from_sweep

Query = UnionOfConjunctiveQueries | ConjunctiveQuery

_ORDER_KINDS = ("default", "path", "tree")


@dataclass
class CacheStats:
    """Hit/miss counters for one engine cache.

    ``quarantines`` is only ever non-zero on the ``"store"`` cache: it
    counts persistent-store entries that failed integrity verification and
    were moved aside during this engine's lookups (each such lookup also
    counts as a miss — the artifact was recompiled).
    """

    hits: int = 0
    misses: int = 0
    quarantines: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def record(self, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            self.hits + other.hits,
            self.misses + other.misses,
            self.quarantines + other.quarantines,
        )

    def copy(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.quarantines)

    def __str__(self) -> str:
        text = f"{self.hits} hits / {self.misses} misses"
        if self.quarantines:
            text += f" / {self.quarantines} quarantined"
        return text


def merge_cache_stats(
    per_worker: Iterable[dict[str, CacheStats]],
) -> dict[str, CacheStats]:
    """Pointwise sum of several engines' ``stats`` dictionaries.

    Used by :class:`repro.engine.parallel.ParallelEngine` to aggregate the
    per-worker statistics into one report; the merged counters are exactly the
    sums of the worker counters, cache by cache.
    """
    merged: dict[str, CacheStats] = {}
    for stats in per_worker:
        for name, value in stats.items():
            if name in merged:
                merged[name] = merged[name] + value
            else:
                merged[name] = value.copy()
    return merged


@dataclass
class _InstanceArtifacts:
    """Everything the engine has derived from one instance (by fingerprint).

    The per-query maps are LRU-trimmed by the engine (``max_queries_per_instance``)
    so a long-lived session evaluating many distinct queries against one hot
    instance cannot accumulate lineages and OBDDs without bound.
    """

    graph: Graph | None = None
    sweep: EliminationSweep | None = None
    tree: TreeDecomposition | None = None
    path: PathDecomposition | None = None
    encoding: TreeEncoding | None = None
    orders: dict[str, tuple[Fact, ...]] = field(default_factory=dict)
    lineages: OrderedDict[UnionOfConjunctiveQueries, MonotoneDNFLineage] = field(
        default_factory=OrderedDict
    )
    compiled: OrderedDict[tuple[UnionOfConjunctiveQueries, bool], CompiledOBDD] = field(
        default_factory=OrderedDict
    )
    columnar: OrderedDict[tuple[UnionOfConjunctiveQueries, bool], ColumnarOBDD] = field(
        default_factory=OrderedDict
    )
    dnnfs: OrderedDict[UnionOfConjunctiveQueries, DNNF] = field(default_factory=OrderedDict)


class CompilationEngine:
    """A memoizing session for lineage compilation and probability evaluation.

    Parameters
    ----------
    max_instances:
        How many distinct instances (by fingerprint) to keep artifacts for;
        the least recently used instance is evicted beyond this bound.
    max_queries_per_instance:
        How many distinct (query, options) lineages/OBDDs to keep per
        instance; least recently used entries are evicted beyond this bound.
    max_probability_entries:
        Bound on the (query, TID fingerprint, method) -> probability cache.
    circuit_fact_limit:
        Instance size (fact count) beyond which the dichotomy router
        (:meth:`choose_route`) treats the circuit-building routes as
        infeasible for ``method="auto"`` unless their artifact is already
        cached; the lifted plan route has no such limit.
    degradation:
        ``None`` (the default) keeps the engine strictly exact: when every
        route in the ``method="auto"`` failover chain fails, the last typed
        error is raised.  ``"karp_luby"`` opts into graceful degradation:
        the engine then returns a labelled
        :class:`~repro.engine.resilience.ProbabilityBounds` (guaranteed
        dissociation interval plus a seeded point estimate) instead of
        raising — never a bare float masquerading as exact, and never
        entered into the exact probability cache.
    store:
        A persistent tier below the in-memory LRU caches: an opened
        :class:`~repro.store.ArtifactStore`, or a directory path (string or
        ``Path``) to open one at.  Compiled columnar artifacts, lifted
        plans, and tree encodings are then *read through* the store on a
        memory miss (every lookup counted in ``stats["store"]``) and
        *written behind* on a fresh build, so they survive process restarts
        and are shared by every engine pointed at the same directory.  A
        store entry that fails integrity verification is quarantined and
        recompiled (counted in ``stats["store"].quarantines``) — the store
        can never change an answer, only the time to produce it.
    """

    def __init__(
        self,
        max_instances: int = 256,
        max_queries_per_instance: int = 1024,
        max_probability_entries: int = 65536,
        circuit_fact_limit: int = 20000,
        degradation: str | None = None,
        store: "ArtifactStore | str | Path | None" = None,
    ) -> None:
        if max_instances < 1:
            raise CompilationError("max_instances must be at least 1")
        if max_queries_per_instance < 1:
            raise CompilationError("max_queries_per_instance must be at least 1")
        if max_probability_entries < 1:
            raise CompilationError("max_probability_entries must be at least 1")
        if circuit_fact_limit < 1:
            raise CompilationError("circuit_fact_limit must be at least 1")
        if degradation not in (None, DEGRADED_ROUTE):
            raise CompilationError(
                f"unknown degradation tier {degradation!r}; use None or {DEGRADED_ROUTE!r}"
            )
        self._max_instances = max_instances
        self._max_queries_per_instance = max_queries_per_instance
        self._max_probability_entries = max_probability_entries
        self.circuit_fact_limit = circuit_fact_limit
        self.degradation = degradation
        #: The most recent ``method="auto"`` decision, re-published after the
        #: evaluation with the failover ``attempts`` chain filled in (what
        #: the CLI's ``--explain`` reports).
        self.last_decision: RouteDecision | None = None
        self._artifacts: OrderedDict[str, _InstanceArtifacts] = OrderedDict()
        self._probabilities: OrderedDict[tuple, Fraction] = OrderedDict()
        # Safe plans are instance-independent, so the plan cache is keyed by
        # the (frozen, content-hashed) query alone; None records "unsafe" so
        # repeated routing of an unsafe query never re-runs minimization.
        self._lifted_plans: OrderedDict[UnionOfConjunctiveQueries, LiftedPlan | None] = (
            OrderedDict()
        )
        self.route_costs = RouteCostModel()
        self.route_counts: dict[str, int] = {}
        if isinstance(store, (str, Path)):
            store = ArtifactStore(store)
        self.store: ArtifactStore | None = store
        self._store_quarantines_seen = store.counters.quarantines if store else 0
        self.stats: dict[str, CacheStats] = {
            "structure": CacheStats(),
            "lineage": CacheStats(),
            "obdd": CacheStats(),
            "columnar": CacheStats(),
            "dnnf": CacheStats(),
            "lifted_plan": CacheStats(),
            "probability": CacheStats(),
            "store": CacheStats(),
        }

    # -- cache plumbing -------------------------------------------------------

    def _slot(self, instance: Instance) -> _InstanceArtifacts:
        key = instance.fingerprint
        slot = self._artifacts.get(key)
        if slot is None:
            slot = _InstanceArtifacts()
            self._artifacts[key] = slot
            while len(self._artifacts) > self._max_instances:
                self._artifacts.popitem(last=False)
        else:
            self._artifacts.move_to_end(key)
        return slot

    def clear(self) -> None:
        """Drop every cached artifact and reset the statistics."""
        self._artifacts.clear()
        self._probabilities.clear()
        self._lifted_plans.clear()
        self.route_counts.clear()
        self.last_decision = None
        for stats in self.stats.values():
            stats.hits = stats.misses = stats.quarantines = 0
        if self.store is not None:
            self._store_quarantines_seen = self.store.counters.quarantines

    def cache_info(self) -> dict[str, CacheStats]:
        """The per-cache hit/miss statistics (live objects, not copies)."""
        return dict(self.stats)

    def route_mix(self) -> dict[str, int]:
        """How often each route served a ``method="auto"`` evaluation.

        Counts actual evaluations (probability-cache hits short-circuit
        before routing and are visible in the ``probability`` stats).
        """
        return dict(self.route_counts)

    # -- the persistent tier ---------------------------------------------------
    #
    # Read-through/write-behind around the same content-fingerprint keys the
    # in-memory caches use.  Every store lookup is counted in stats["store"];
    # quarantines the store performed during this engine's traffic are folded
    # into the same entry, so ``cache_info()`` surfaces disk damage without a
    # separate reporting channel.  All store traffic is best-effort by
    # construction: a miss (including a quarantined hit) falls through to
    # recompilation, a failed write leaves the in-memory artifact in charge.

    def _sync_store_quarantines(self) -> None:
        assert self.store is not None
        delta = self.store.counters.quarantines - self._store_quarantines_seen
        if delta > 0:
            self.stats["store"].quarantines += delta
            self._store_quarantines_seen = self.store.counters.quarantines

    def _store_columnar_meta(
        self, query: Query, instance: Instance, use_path: bool
    ) -> dict[str, object]:
        # The query's canonical text round-trips through parse_ucq, which is
        # what lets ``store verify --repair`` re-derive the artifact from
        # the entry's metadata plus the source instance alone.
        return {
            "kind": "columnar",
            "query": canonical_query_text(query),
            "use_path": bool(use_path),
            "instance": instance.fingerprint,
        }

    def _store_load_columnar(
        self, query: Query, instance: Instance, use_path: bool
    ) -> ColumnarOBDD | None:
        if self.store is None:
            return None
        key = columnar_key(instance.fingerprint, query, use_path)
        artifact = self.store.get_columnar(key)
        self.stats["store"].record(artifact is not None)
        self._sync_store_quarantines()
        return artifact

    def _store_save_columnar(
        self, query: Query, instance: Instance, use_path: bool, columnar: ColumnarOBDD
    ) -> None:
        if self.store is None:
            return
        key = columnar_key(instance.fingerprint, query, use_path)
        self.store.put_columnar(
            key, columnar, self._store_columnar_meta(query, instance, use_path)
        )
        self._sync_store_quarantines()

    # -- structural artifacts -------------------------------------------------

    def gaifman(self, instance: Instance) -> Graph:
        """The (cached) Gaifman graph of the instance."""
        slot = self._slot(instance)
        self.stats["structure"].record(slot.graph is not None)
        if slot.graph is None:
            slot.graph = gaifman_graph(instance)
        return slot.graph

    def _sweep_of(self, instance: Instance) -> EliminationSweep:
        """The (cached) best-heuristic elimination sweep: the one structural
        computation both the tree decomposition and the fused tree encoding
        derive from, so a session runs it at most once per instance."""
        slot = self._slot(instance)
        if slot.sweep is None:
            slot.sweep = best_heuristic_sweep(self.gaifman(instance))
        return slot.sweep

    def tree_decomposition_of(self, instance: Instance) -> TreeDecomposition:
        """A (cached) tree decomposition of the instance's Gaifman graph."""
        slot = self._slot(instance)
        self.stats["structure"].record(slot.tree is not None)
        if slot.tree is None:
            slot.tree = decomposition_from_sweep(self._sweep_of(instance))
        return slot.tree

    def path_decomposition_of(self, instance: Instance) -> PathDecomposition:
        """A (cached) path decomposition of the instance's Gaifman graph."""
        slot = self._slot(instance)
        self.stats["structure"].record(slot.path is not None)
        if slot.path is None:
            slot.path = path_decomposition(self.gaifman(instance))
        return slot.path

    def tree_encoding_of(self, instance: Instance) -> TreeEncoding:
        """A (cached) tree encoding of the instance, built by the fused
        single-sweep pipeline (:func:`repro.provenance.tree_encoding.
        fused_tree_encoding`), reusing the cached Gaifman graph."""
        slot = self._slot(instance)
        self.stats["structure"].record(slot.encoding is not None)
        if slot.encoding is None and self.store is not None:
            found, value = self.store.get_object(encoding_key(instance.fingerprint))
            self.stats["store"].record(found)
            self._sync_store_quarantines()
            if found:
                nodes, root = value
                slot.encoding = TreeEncoding(instance, nodes, root)
        if slot.encoding is None:
            slot.encoding = fused_tree_encoding(instance, sweep=self._sweep_of(instance))
            if self.store is not None:
                # Persist only the instance-independent node table: the
                # loading engine reattaches its own Instance object.
                self.store.put_object(
                    encoding_key(instance.fingerprint),
                    (slot.encoding.nodes, slot.encoding.root),
                    {"kind": "tree_encoding", "instance": instance.fingerprint},
                )
                self._sync_store_quarantines()
        return slot.encoding

    def fact_order(self, instance: Instance, kind: str = "default") -> tuple[Fact, ...]:
        """A (cached) fact order: ``"default"``, ``"path"``, or ``"tree"``."""
        if kind not in _ORDER_KINDS:
            raise CompilationError(f"unknown fact order kind {kind!r}; use one of {_ORDER_KINDS}")
        slot = self._slot(instance)
        self.stats["structure"].record(kind in slot.orders)
        if kind not in slot.orders:
            if kind == "path":
                order = fact_order_from_path_decomposition(
                    instance, self.path_decomposition_of(instance)
                )
            elif kind == "tree":
                order = fact_order_from_tree_decomposition(
                    instance, self.tree_decomposition_of(instance)
                )
            else:
                order = default_fact_order(
                    instance,
                    path=self.path_decomposition_of(instance),
                    tree=self.tree_decomposition_of(instance),
                )
            slot.orders[kind] = tuple(order)
        return slot.orders[kind]

    # -- lineages and OBDDs ---------------------------------------------------

    def lineage(self, query: Query, instance: Instance) -> MonotoneDNFLineage:
        """The (cached) minimal-match DNF lineage of the query on the instance."""
        key = as_ucq(query)
        slot = self._slot(instance)
        hit = key in slot.lineages
        self.stats["lineage"].record(hit)
        if hit:
            slot.lineages.move_to_end(key)
        else:
            slot.lineages[key] = lineage_of(key, instance)
            while len(slot.lineages) > self._max_queries_per_instance:
                slot.lineages.popitem(last=False)
        return slot.lineages[key]

    def compile(
        self, query: Query, instance: Instance, use_path_decomposition: bool = False
    ) -> CompiledOBDD:
        """The (cached) OBDD compilation of the query's lineage on the instance.

        With a persistent :attr:`store`, a memory miss first tries the
        stored columnar form (rehydrated losslessly via
        :meth:`CompiledOBDD.from_columnar` — no lineage enumeration, no
        OBDD construction); a fresh build is flattened and written behind.
        """
        return self._compile(query, instance, bool(use_path_decomposition), probe_store=True)

    def _compile(
        self, query: Query, instance: Instance, use_path: bool, probe_store: bool
    ) -> CompiledOBDD:
        key = (as_ucq(query), use_path)
        slot = self._slot(instance)
        hit = key in slot.compiled
        self.stats["obdd"].record(hit)
        if hit:
            slot.compiled.move_to_end(key)
        else:
            stored = (
                self._store_load_columnar(query, instance, use_path) if probe_store else None
            )
            if stored is not None:
                slot.compiled[key] = CompiledOBDD.from_columnar(stored)
            else:
                lineage = self.lineage(query, instance)
                order = self.fact_order(instance, "path" if use_path else "default")
                slot.compiled[key] = compile_lineage_to_obdd(lineage, order)
                self._store_save_columnar(
                    query, instance, use_path, slot.compiled[key].to_columnar()
                )
            while len(slot.compiled) > self._max_queries_per_instance:
                slot.compiled.popitem(last=False)
        return slot.compiled[key]

    def compile_many(
        self,
        queries: Iterable[Query],
        instance: Instance,
        use_path_decomposition: bool = False,
    ) -> list[CompiledOBDD]:
        """Compile a batch of queries against one instance in one session.

        The structural artifacts (Gaifman graph, decompositions, fact order)
        are computed once and shared by the whole batch.
        """
        return [self.compile(q, instance, use_path_decomposition) for q in queries]

    def columnar(
        self, query: Query, instance: Instance, use_path_decomposition: bool = False
    ) -> ColumnarOBDD:
        """The (cached) columnar form of the compiled OBDD.

        Keyed exactly like :meth:`compile` (the columnar artifact is a
        lossless flattening of the object artifact, so it shares the same
        fingerprinted identity); built on demand from the cached
        :class:`CompiledOBDD` and LRU-trimmed with the same per-instance
        bound.  This is the artifact the parallel tier ships through shared
        memory and the vectorized sweeps run on.
        """
        key = (as_ucq(query), bool(use_path_decomposition))
        use_path = bool(use_path_decomposition)
        slot = self._slot(instance)
        hit = key in slot.columnar
        self.stats["columnar"].record(hit)
        if hit:
            slot.columnar.move_to_end(key)
            if key in slot.compiled:
                # Keep the source object artifact's LRU slot warm too: a hot
                # columnar view should not see its compiled source evicted.
                self.compile(query, instance, use_path_decomposition)
        else:
            artifact: ColumnarOBDD | None = None
            probed = False
            if key not in slot.compiled:
                # Read through the persistent tier first: a store hit is a
                # verified memory-mapped artifact, served with no lineage
                # enumeration and no OBDD construction at all.
                artifact = self._store_load_columnar(query, instance, use_path)
                probed = True
            if artifact is None:
                artifact = self._compile(
                    query, instance, use_path, probe_store=not probed
                ).to_columnar()
                self._store_save_columnar(query, instance, use_path, artifact)
            slot.columnar[key] = artifact
            while len(slot.columnar) > self._max_queries_per_instance:
                slot.columnar.popitem(last=False)
        return slot.columnar[key]

    def dnnf(self, query: Query, instance: Instance) -> DNNF:
        """A (cached) d-DNNF for the query's lineage, through the OBDD route."""
        key = as_ucq(query)
        slot = self._slot(instance)
        hit = key in slot.dnnfs
        self.stats["dnnf"].record(hit)
        if hit:
            slot.dnnfs.move_to_end(key)
        else:
            slot.dnnfs[key] = self.compile(query, instance).to_dnnf()
            while len(slot.dnnfs) > self._max_queries_per_instance:
                slot.dnnfs.popitem(last=False)
        return slot.dnnfs[key]

    # -- lifted plans and the dichotomy router --------------------------------

    def lifted_plan(self, query: Query) -> LiftedPlan | None:
        """The (cached) lifted plan of the query, or None when unsafe.

        Plans are instance-independent, so the cache is keyed by the query
        alone; the None verdict for unsafe queries is cached too, so routing
        an unsafe query repeatedly never re-runs minimization.
        """
        key = as_ucq(query)
        hit = key in self._lifted_plans
        self.stats["lifted_plan"].record(hit)
        if hit:
            self._lifted_plans.move_to_end(key)
        else:
            plan: LiftedPlan | None = None
            found = False
            if self.store is not None:
                # The pickle codec round-trips the None verdict for unsafe
                # queries too, so minimization never re-runs after a restart.
                found, value = self.store.get_object(plan_key(key))
                self.stats["store"].record(found)
                self._sync_store_quarantines()
                if found:
                    plan = value
            if not found:
                plan = try_lifted_plan(key)
                if self.store is not None:
                    self.store.put_object(
                        plan_key(key),
                        plan,
                        {"kind": "lifted_plan", "query": canonical_query_text(key)},
                    )
                    self._sync_store_quarantines()
            self._lifted_plans[key] = plan
            while len(self._lifted_plans) > self._max_probability_entries:
                self._lifted_plans.popitem(last=False)
        return self._lifted_plans[key]

    def _has_circuit_artifact(self, route: str, query: Query, instance: Instance) -> bool:
        """Whether the route's artifact is already cached for (query, instance).

        A peek, not a touch: no LRU reordering, no stats, no construction.
        """
        slot = self._artifacts.get(instance.fingerprint)
        if slot is None:
            return False
        key = as_ucq(query)
        if route == "obdd":
            return (key, False) in slot.compiled or (key, True) in slot.compiled
        if route == "columnar":
            return (key, False) in slot.columnar or (key, True) in slot.columnar
        if route == "dnnf":
            return key in slot.dnnfs
        if route == "automaton":
            return slot.encoding is not None
        return False

    def choose_route(self, query: Query, tid: ProbabilisticInstance) -> RouteDecision:
        """The dichotomy router: pick the ``method="auto"`` evaluation route.

        The query side of the dichotomy first: if the query admits a lifted
        plan, the safe-plan route is a candidate at its measured cost.  The
        instance side next: each circuit route is a candidate unless the
        instance exceeds ``circuit_fact_limit`` and the route's artifact is
        not already cached.  Among the candidates, the cost model's cheapest
        prediction wins (ties broken by :data:`ROUTE_PREFERENCE`).
        """
        plan = self.lifted_plan(query)
        facts = len(tid.instance)
        estimates: list[tuple[str, float]] = []
        infeasible: list[str] = []
        if plan is not None:
            estimates.append(("safe_plan", self.route_costs.predict("safe_plan", facts)))
        for route in CIRCUIT_ROUTES:
            if facts > self.circuit_fact_limit and not self._has_circuit_artifact(
                route, query, tid.instance
            ):
                infeasible.append(route)
            else:
                estimates.append((route, self.route_costs.predict(route, facts)))
        estimates.sort(key=lambda e: (e[1], ROUTE_PREFERENCE.get(e[0], len(ROUTE_PREFERENCE))))
        if estimates:
            method = estimates[0][0]
            reason = (
                f"cheapest predicted route at {facts} facts"
                if len(estimates) > 1
                else "only feasible route"
            )
        else:
            # Nothing feasible (unsafe query on a huge instance): fall back to
            # the OBDD route best-effort rather than refusing to answer.
            method = "obdd"
            reason = "no feasible route; best-effort OBDD fallback"
        return RouteDecision(
            method=method,
            liftable=plan is not None,
            instance_facts=facts,
            estimates=tuple(estimates),
            infeasible=tuple(infeasible),
            reason=reason,
        )

    # -- probability evaluation -----------------------------------------------

    def probability(
        self,
        query: Query,
        tid: ProbabilisticInstance,
        method: str = "auto",
        budget: ResourceBudget | None = None,
    ) -> Fraction | float | ProbabilityBounds:
        """The (cached) probability of the query on a TID instance.

        Methods mirror :func:`repro.probability.evaluation.probability`:
        ``auto`` consults the dichotomy router (:meth:`choose_route`) and
        records the chosen route in :meth:`route_mix`; ``safe_plan`` executes
        the engine's cached lifted plan (:meth:`lifted_plan`);
        ``read_once``/``obdd``/``dnnf`` run on the engine's cached lineages
        and OBDDs (evaluated by the fused sweep kernel of
        :meth:`repro.booleans.obdd.OBDD.sweep`); ``obdd_float`` serves the
        sweep's float fast path (a ``float``, cached under its own method
        key, never mixed with the exact entries); ``automaton`` runs the
        state dynamic programming over the engine's cached fused tree
        encoding (:meth:`tree_encoding_of`); the remaining methods
        (``brute_force``, ``safe_plan_reference``) have no reusable
        artifacts and are delegated, with only their final value cached.

        ``budget`` activates a :class:`~repro.resilience.ResourceBudget`
        around the evaluation: the kernels then checkpoint against its node
        and row caps and its wall-clock deadline, raising
        :class:`~repro.errors.BudgetExceeded` /
        :class:`~repro.errors.DeadlineExceeded` (``method="auto"`` fails
        over between routes on the former).  A cache hit answers without
        consulting the budget.  Degraded answers
        (:class:`~repro.engine.resilience.ProbabilityBounds`) are never
        cached: the next call gets a fresh chance at an exact route.
        """
        key = (as_ucq(query), tid.fingerprint, method)
        cached = self._probabilities.get(key)
        self.stats["probability"].record(cached is not None)
        if cached is not None:
            self._probabilities.move_to_end(key)
            return cached
        if budget is not None:
            with activate(budget):
                value = self._evaluate_probability(as_ucq(query), tid, method)
        else:
            value = self._evaluate_probability(as_ucq(query), tid, method)
        if isinstance(value, ProbabilityBounds):
            return value
        self._probabilities[key] = value
        while len(self._probabilities) > self._max_probability_entries:
            self._probabilities.popitem(last=False)
        return value

    def probability_many(
        self,
        queries: Sequence[Query],
        tid: ProbabilisticInstance,
        method: str = "auto",
        budget: ResourceBudget | None = None,
    ) -> list[Fraction | float | ProbabilityBounds]:
        """Probabilities of a batch of queries on one TID instance.

        A shared ``budget`` spans the whole batch: its node/row caps bound
        each attempt (the failover chain resets the usage counters between
        routes) while its deadline is global to the batch.
        """
        return [self.probability(q, tid, method, budget=budget) for q in queries]

    def _evaluate_probability(
        self, query: UnionOfConjunctiveQueries, tid: ProbabilisticInstance, method: str
    ) -> Fraction | float | ProbabilityBounds:
        from repro.probability.evaluation import (
            _probability_of_read_once,
            probability as one_shot_probability,
        )

        if method == "auto":
            return self._evaluate_auto(query, tid)
        if method == "read_once":
            lineage = self.lineage(query, tid.instance)
            if lineage.is_read_once_shaped():
                return _probability_of_read_once(lineage, tid)
            raise ProbabilityError("lineage is not read-once shaped; use another method")
        if method == "safe_plan":
            plan = self.lifted_plan(query)
            if plan is None:
                raise UnsafeQueryError(
                    "query admits no lifted plan: use a circuit method or auto"
                )
            return execute_plan(plan, tid)
        if method == "obdd":
            return self.compile(query, tid.instance).probability(tid.valuation())
        if method == "obdd_float":
            return self.compile(query, tid.instance).probability(tid.valuation(), exact=False)
        if method == "columnar":
            return self.columnar(query, tid.instance).probability(tid.valuation())
        if method == "columnar_float":
            return self.columnar(query, tid.instance).probability(tid.valuation(), exact=False)
        if method == "automaton_columnar":
            from repro.provenance.columnar_product import (
                ucq_probability_via_columnar_automaton,
            )

            return ucq_probability_via_columnar_automaton(
                query, tid, encoding=self.tree_encoding_of(tid.instance)
            )
        if method == "dnnf":
            dnnf = self.dnnf(query, tid.instance)
            valuation = {fact: tid.probability_of(fact) for fact in dnnf.variables()}
            return dnnf.probability(valuation)
        if method == "automaton":
            from repro.provenance.ucq_automaton import ucq_probability_via_automaton

            # The fused tree encoding is a per-instance structural artifact:
            # cached here, every query in a session reuses it.
            return ucq_probability_via_automaton(
                query, tid, encoding=self.tree_encoding_of(tid.instance)
            )
        # brute_force / safe_plan_reference: no cross-call artifacts to reuse.
        return one_shot_probability(query, tid, method=method)

    def _evaluate_auto(
        self, query: UnionOfConjunctiveQueries, tid: ProbabilisticInstance
    ) -> Fraction | ProbabilityBounds:
        """``method="auto"``: the routed evaluation with route failover.

        The router's pick runs first; on a budget blowout or a
        route-specific failure the engine advances through the remaining
        feasible routes in :data:`~repro.engine.resilience.FAILOVER_ORDER`,
        resetting the active budget's usage counters between attempts
        (caps are per-attempt) and recording each failure as a cost-model
        penalty.  A :class:`~repro.errors.DeadlineExceeded` is terminal:
        no remaining route can finish inside an already-elapsed wall-clock
        deadline, so it re-raises instead of failing over.  When every
        exact route fails, the opt-in ``karp_luby`` degradation tier
        returns labelled bounds; without it, the last typed error is
        re-raised.  The walked chain is re-published on
        :attr:`last_decision` as :class:`~repro.engine.router.RouteAttempt`
        records.
        """
        decision = self.choose_route(query, tid)
        feasible = {route for route, _ in decision.estimates}
        chain = [decision.method] + [
            route
            for route in FAILOVER_ORDER
            if route in feasible and route != decision.method
        ]
        budget = active_budget()
        facts = len(tid.instance)
        attempts: list[RouteAttempt] = []
        last_error: BaseException | None = None
        for route in chain:
            started = perf_counter()
            try:
                if budget is not None:
                    # Never start a route after the deadline has passed; the
                    # kernels' own checkpoints only fire once work is underway.
                    budget.checkpoint()
                value = self._evaluate_route(route, query, tid)
            except DeadlineExceeded as error:
                self.route_costs.record_failure(route)
                attempts.append(
                    RouteAttempt(route, _describe_failure(error), perf_counter() - started)
                )
                self.last_decision = replace(decision, attempts=tuple(attempts))
                raise
            except (ReproError, MemoryError) as error:
                self.route_costs.record_failure(route)
                attempts.append(
                    RouteAttempt(route, _describe_failure(error), perf_counter() - started)
                )
                last_error = error
                if budget is not None:
                    # Caps are per-attempt: the next route starts fresh
                    # (the deadline, deliberately, keeps running).
                    budget.reset_usage()
                continue
            elapsed = perf_counter() - started
            self.route_counts[route] = self.route_counts.get(route, 0) + 1
            self.route_costs.observe(route, facts, elapsed)
            attempts.append(RouteAttempt(route, "", elapsed))
            self.last_decision = replace(
                decision, method=route, attempts=tuple(attempts)
            )
            return value
        if self.degradation == DEGRADED_ROUTE:
            bounds = degraded_probability_bounds(query, tid)
            self.route_counts[DEGRADED_ROUTE] = (
                self.route_counts.get(DEGRADED_ROUTE, 0) + 1
            )
            self.last_decision = replace(
                decision,
                method=DEGRADED_ROUTE,
                attempts=tuple(attempts),
                degraded=True,
            )
            return bounds
        self.last_decision = replace(decision, attempts=tuple(attempts))
        assert last_error is not None  # the chain is never empty
        raise last_error

    def _evaluate_route(
        self, route: str, query: UnionOfConjunctiveQueries, tid: ProbabilisticInstance
    ) -> Fraction:
        """Run one route chosen by :meth:`choose_route` (always exact)."""
        from repro.probability.evaluation import _probability_of_read_once

        if route == "safe_plan":
            plan = self.lifted_plan(query)
            if plan is None:  # pragma: no cover - router never picks this
                raise UnsafeQueryError("query admits no lifted plan")
            return execute_plan(plan, tid)
        if route == "obdd":
            # Keep the read-once shortcut: a read-once-shaped lineage is
            # evaluated directly, skipping OBDD construction entirely.
            lineage = self.lineage(query, tid.instance)
            if lineage.is_read_once_shaped():
                return _probability_of_read_once(lineage, tid)
            return self.compile(query, tid.instance).probability(tid.valuation())
        if route == "columnar":
            return self.columnar(query, tid.instance).probability(tid.valuation())
        if route == "dnnf":
            dnnf = self.dnnf(query, tid.instance)
            valuation = {fact: tid.probability_of(fact) for fact in dnnf.variables()}
            return dnnf.probability(valuation)
        if route == "automaton":
            from repro.provenance.ucq_automaton import ucq_probability_via_automaton

            return ucq_probability_via_automaton(
                query, tid, encoding=self.tree_encoding_of(tid.instance)
            )
        raise CompilationError(f"unknown route {route!r}")


def _describe_failure(error: BaseException) -> str:
    """One-line attempt label: ``ErrorType: message`` (message truncated)."""
    message = str(error)
    if len(message) > 200:
        message = message[:197] + "..."
    return f"{type(error).__name__}: {message}" if message else type(error).__name__


_DEFAULT_ENGINE: CompilationEngine | None = None


def default_engine() -> CompilationEngine:
    """The process-wide default engine (created lazily on first use)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = CompilationEngine()
    return _DEFAULT_ENGINE
