"""The :class:`CompilationEngine` session object (see the package docstring).

The engine is deliberately a plain in-process object: it owns ordinary
dictionaries behind content fingerprints, so a web worker, a benchmark, or a
CLI invocation can hold one engine per process (or one per tenant) and get
memoization without any global state.  A module-level :func:`default_engine`
is provided for the common single-session case.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Sequence

from repro.booleans.columnar import ColumnarOBDD
from repro.booleans.dnnf import DNNF
from repro.data.gaifman import gaifman_graph
from repro.data.instance import Fact, Instance
from repro.data.tid import ProbabilisticInstance
from repro.errors import CompilationError, ProbabilityError
from repro.provenance.compile_obdd import CompiledOBDD, compile_lineage_to_obdd
from repro.provenance.lineage import MonotoneDNFLineage, lineage_of
from repro.provenance.tree_encoding import TreeEncoding, fused_tree_encoding
from repro.provenance.variable_orders import (
    default_fact_order,
    fact_order_from_path_decomposition,
    fact_order_from_tree_decomposition,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq
from repro.structure.elimination import EliminationSweep, best_heuristic_sweep
from repro.structure.graph import Graph
from repro.structure.path_decomposition import PathDecomposition, path_decomposition
from repro.structure.tree_decomposition import TreeDecomposition, decomposition_from_sweep

Query = UnionOfConjunctiveQueries | ConjunctiveQuery

_ORDER_KINDS = ("default", "path", "tree")


@dataclass
class CacheStats:
    """Hit/miss counters for one engine cache."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def record(self, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(self.hits + other.hits, self.misses + other.misses)

    def copy(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses)

    def __str__(self) -> str:
        return f"{self.hits} hits / {self.misses} misses"


def merge_cache_stats(
    per_worker: Iterable[dict[str, CacheStats]],
) -> dict[str, CacheStats]:
    """Pointwise sum of several engines' ``stats`` dictionaries.

    Used by :class:`repro.engine.parallel.ParallelEngine` to aggregate the
    per-worker statistics into one report; the merged counters are exactly the
    sums of the worker counters, cache by cache.
    """
    merged: dict[str, CacheStats] = {}
    for stats in per_worker:
        for name, value in stats.items():
            if name in merged:
                merged[name] = merged[name] + value
            else:
                merged[name] = value.copy()
    return merged


@dataclass
class _InstanceArtifacts:
    """Everything the engine has derived from one instance (by fingerprint).

    The per-query maps are LRU-trimmed by the engine (``max_queries_per_instance``)
    so a long-lived session evaluating many distinct queries against one hot
    instance cannot accumulate lineages and OBDDs without bound.
    """

    graph: Graph | None = None
    sweep: EliminationSweep | None = None
    tree: TreeDecomposition | None = None
    path: PathDecomposition | None = None
    encoding: TreeEncoding | None = None
    orders: dict[str, tuple[Fact, ...]] = field(default_factory=dict)
    lineages: OrderedDict[UnionOfConjunctiveQueries, MonotoneDNFLineage] = field(
        default_factory=OrderedDict
    )
    compiled: OrderedDict[tuple[UnionOfConjunctiveQueries, bool], CompiledOBDD] = field(
        default_factory=OrderedDict
    )
    columnar: OrderedDict[tuple[UnionOfConjunctiveQueries, bool], ColumnarOBDD] = field(
        default_factory=OrderedDict
    )
    dnnfs: OrderedDict[UnionOfConjunctiveQueries, DNNF] = field(default_factory=OrderedDict)


class CompilationEngine:
    """A memoizing session for lineage compilation and probability evaluation.

    Parameters
    ----------
    max_instances:
        How many distinct instances (by fingerprint) to keep artifacts for;
        the least recently used instance is evicted beyond this bound.
    max_queries_per_instance:
        How many distinct (query, options) lineages/OBDDs to keep per
        instance; least recently used entries are evicted beyond this bound.
    max_probability_entries:
        Bound on the (query, TID fingerprint, method) -> probability cache.
    """

    def __init__(
        self,
        max_instances: int = 256,
        max_queries_per_instance: int = 1024,
        max_probability_entries: int = 65536,
    ) -> None:
        if max_instances < 1:
            raise CompilationError("max_instances must be at least 1")
        if max_queries_per_instance < 1:
            raise CompilationError("max_queries_per_instance must be at least 1")
        if max_probability_entries < 1:
            raise CompilationError("max_probability_entries must be at least 1")
        self._max_instances = max_instances
        self._max_queries_per_instance = max_queries_per_instance
        self._max_probability_entries = max_probability_entries
        self._artifacts: OrderedDict[str, _InstanceArtifacts] = OrderedDict()
        self._probabilities: OrderedDict[tuple, Fraction] = OrderedDict()
        self.stats: dict[str, CacheStats] = {
            "structure": CacheStats(),
            "lineage": CacheStats(),
            "obdd": CacheStats(),
            "columnar": CacheStats(),
            "dnnf": CacheStats(),
            "probability": CacheStats(),
        }

    # -- cache plumbing -------------------------------------------------------

    def _slot(self, instance: Instance) -> _InstanceArtifacts:
        key = instance.fingerprint
        slot = self._artifacts.get(key)
        if slot is None:
            slot = _InstanceArtifacts()
            self._artifacts[key] = slot
            while len(self._artifacts) > self._max_instances:
                self._artifacts.popitem(last=False)
        else:
            self._artifacts.move_to_end(key)
        return slot

    def clear(self) -> None:
        """Drop every cached artifact and reset the statistics."""
        self._artifacts.clear()
        self._probabilities.clear()
        for stats in self.stats.values():
            stats.hits = stats.misses = 0

    def cache_info(self) -> dict[str, CacheStats]:
        """The per-cache hit/miss statistics (live objects, not copies)."""
        return dict(self.stats)

    # -- structural artifacts -------------------------------------------------

    def gaifman(self, instance: Instance) -> Graph:
        """The (cached) Gaifman graph of the instance."""
        slot = self._slot(instance)
        self.stats["structure"].record(slot.graph is not None)
        if slot.graph is None:
            slot.graph = gaifman_graph(instance)
        return slot.graph

    def _sweep_of(self, instance: Instance) -> EliminationSweep:
        """The (cached) best-heuristic elimination sweep: the one structural
        computation both the tree decomposition and the fused tree encoding
        derive from, so a session runs it at most once per instance."""
        slot = self._slot(instance)
        if slot.sweep is None:
            slot.sweep = best_heuristic_sweep(self.gaifman(instance))
        return slot.sweep

    def tree_decomposition_of(self, instance: Instance) -> TreeDecomposition:
        """A (cached) tree decomposition of the instance's Gaifman graph."""
        slot = self._slot(instance)
        self.stats["structure"].record(slot.tree is not None)
        if slot.tree is None:
            slot.tree = decomposition_from_sweep(self._sweep_of(instance))
        return slot.tree

    def path_decomposition_of(self, instance: Instance) -> PathDecomposition:
        """A (cached) path decomposition of the instance's Gaifman graph."""
        slot = self._slot(instance)
        self.stats["structure"].record(slot.path is not None)
        if slot.path is None:
            slot.path = path_decomposition(self.gaifman(instance))
        return slot.path

    def tree_encoding_of(self, instance: Instance) -> TreeEncoding:
        """A (cached) tree encoding of the instance, built by the fused
        single-sweep pipeline (:func:`repro.provenance.tree_encoding.
        fused_tree_encoding`), reusing the cached Gaifman graph."""
        slot = self._slot(instance)
        self.stats["structure"].record(slot.encoding is not None)
        if slot.encoding is None:
            slot.encoding = fused_tree_encoding(instance, sweep=self._sweep_of(instance))
        return slot.encoding

    def fact_order(self, instance: Instance, kind: str = "default") -> tuple[Fact, ...]:
        """A (cached) fact order: ``"default"``, ``"path"``, or ``"tree"``."""
        if kind not in _ORDER_KINDS:
            raise CompilationError(f"unknown fact order kind {kind!r}; use one of {_ORDER_KINDS}")
        slot = self._slot(instance)
        self.stats["structure"].record(kind in slot.orders)
        if kind not in slot.orders:
            if kind == "path":
                order = fact_order_from_path_decomposition(
                    instance, self.path_decomposition_of(instance)
                )
            elif kind == "tree":
                order = fact_order_from_tree_decomposition(
                    instance, self.tree_decomposition_of(instance)
                )
            else:
                order = default_fact_order(
                    instance,
                    path=self.path_decomposition_of(instance),
                    tree=self.tree_decomposition_of(instance),
                )
            slot.orders[kind] = tuple(order)
        return slot.orders[kind]

    # -- lineages and OBDDs ---------------------------------------------------

    def lineage(self, query: Query, instance: Instance) -> MonotoneDNFLineage:
        """The (cached) minimal-match DNF lineage of the query on the instance."""
        key = as_ucq(query)
        slot = self._slot(instance)
        hit = key in slot.lineages
        self.stats["lineage"].record(hit)
        if hit:
            slot.lineages.move_to_end(key)
        else:
            slot.lineages[key] = lineage_of(key, instance)
            while len(slot.lineages) > self._max_queries_per_instance:
                slot.lineages.popitem(last=False)
        return slot.lineages[key]

    def compile(
        self, query: Query, instance: Instance, use_path_decomposition: bool = False
    ) -> CompiledOBDD:
        """The (cached) OBDD compilation of the query's lineage on the instance."""
        key = (as_ucq(query), bool(use_path_decomposition))
        slot = self._slot(instance)
        hit = key in slot.compiled
        self.stats["obdd"].record(hit)
        if hit:
            slot.compiled.move_to_end(key)
        else:
            lineage = self.lineage(query, instance)
            order = self.fact_order(instance, "path" if use_path_decomposition else "default")
            slot.compiled[key] = compile_lineage_to_obdd(lineage, order)
            while len(slot.compiled) > self._max_queries_per_instance:
                slot.compiled.popitem(last=False)
        return slot.compiled[key]

    def compile_many(
        self,
        queries: Iterable[Query],
        instance: Instance,
        use_path_decomposition: bool = False,
    ) -> list[CompiledOBDD]:
        """Compile a batch of queries against one instance in one session.

        The structural artifacts (Gaifman graph, decompositions, fact order)
        are computed once and shared by the whole batch.
        """
        return [self.compile(q, instance, use_path_decomposition) for q in queries]

    def columnar(
        self, query: Query, instance: Instance, use_path_decomposition: bool = False
    ) -> ColumnarOBDD:
        """The (cached) columnar form of the compiled OBDD.

        Keyed exactly like :meth:`compile` (the columnar artifact is a
        lossless flattening of the object artifact, so it shares the same
        fingerprinted identity); built on demand from the cached
        :class:`CompiledOBDD` and LRU-trimmed with the same per-instance
        bound.  This is the artifact the parallel tier ships through shared
        memory and the vectorized sweeps run on.
        """
        key = (as_ucq(query), bool(use_path_decomposition))
        slot = self._slot(instance)
        hit = key in slot.columnar
        self.stats["columnar"].record(hit)
        if hit:
            slot.columnar.move_to_end(key)
            # Keep the source object artifact's LRU slot warm too: a hot
            # columnar view should not see its compiled source evicted.
            self.compile(query, instance, use_path_decomposition)
        else:
            slot.columnar[key] = self.compile(query, instance, use_path_decomposition).to_columnar()
            while len(slot.columnar) > self._max_queries_per_instance:
                slot.columnar.popitem(last=False)
        return slot.columnar[key]

    def dnnf(self, query: Query, instance: Instance) -> DNNF:
        """A (cached) d-DNNF for the query's lineage, through the OBDD route."""
        key = as_ucq(query)
        slot = self._slot(instance)
        hit = key in slot.dnnfs
        self.stats["dnnf"].record(hit)
        if hit:
            slot.dnnfs.move_to_end(key)
        else:
            slot.dnnfs[key] = self.compile(query, instance).to_dnnf()
            while len(slot.dnnfs) > self._max_queries_per_instance:
                slot.dnnfs.popitem(last=False)
        return slot.dnnfs[key]

    # -- probability evaluation -----------------------------------------------

    def probability(
        self, query: Query, tid: ProbabilisticInstance, method: str = "auto"
    ) -> Fraction | float:
        """The (cached) probability of the query on a TID instance.

        Methods mirror :func:`repro.probability.evaluation.probability`: the
        ``auto``/``read_once``/``obdd``/``dnnf`` routes run on the engine's
        cached lineages and OBDDs (evaluated by the fused sweep kernel of
        :meth:`repro.booleans.obdd.OBDD.sweep`); ``obdd_float`` serves the
        sweep's float fast path (a ``float``, cached under its own method
        key, never mixed with the exact entries); ``automaton`` runs the
        state dynamic programming over the engine's cached fused tree
        encoding (:meth:`tree_encoding_of`); the remaining methods
        (``brute_force``, ``safe_plan``) have no reusable artifacts and are
        delegated, with only their final value cached.
        """
        key = (as_ucq(query), tid.fingerprint, method)
        cached = self._probabilities.get(key)
        self.stats["probability"].record(cached is not None)
        if cached is not None:
            self._probabilities.move_to_end(key)
            return cached
        value = self._evaluate_probability(as_ucq(query), tid, method)
        self._probabilities[key] = value
        while len(self._probabilities) > self._max_probability_entries:
            self._probabilities.popitem(last=False)
        return value

    def probability_many(
        self,
        queries: Sequence[Query],
        tid: ProbabilisticInstance,
        method: str = "auto",
    ) -> list[Fraction | float]:
        """Probabilities of a batch of queries on one TID instance."""
        return [self.probability(q, tid, method) for q in queries]

    def _evaluate_probability(
        self, query: UnionOfConjunctiveQueries, tid: ProbabilisticInstance, method: str
    ) -> Fraction | float:
        from repro.probability.evaluation import (
            _probability_of_read_once,
            probability as one_shot_probability,
        )

        if method in ("auto", "read_once"):
            lineage = self.lineage(query, tid.instance)
            if lineage.is_read_once_shaped():
                return _probability_of_read_once(lineage, tid)
            if method == "read_once":
                raise ProbabilityError("lineage is not read-once shaped; use another method")
            return self.compile(query, tid.instance).probability(tid.valuation())
        if method == "obdd":
            return self.compile(query, tid.instance).probability(tid.valuation())
        if method == "obdd_float":
            return self.compile(query, tid.instance).probability(tid.valuation(), exact=False)
        if method == "columnar":
            return self.columnar(query, tid.instance).probability(tid.valuation())
        if method == "columnar_float":
            return self.columnar(query, tid.instance).probability(tid.valuation(), exact=False)
        if method == "automaton_columnar":
            from repro.provenance.columnar_product import (
                ucq_probability_via_columnar_automaton,
            )

            return ucq_probability_via_columnar_automaton(
                query, tid, encoding=self.tree_encoding_of(tid.instance)
            )
        if method == "dnnf":
            dnnf = self.dnnf(query, tid.instance)
            valuation = {fact: tid.probability_of(fact) for fact in dnnf.variables()}
            return dnnf.probability(valuation)
        if method == "automaton":
            from repro.provenance.ucq_automaton import ucq_probability_via_automaton

            # The fused tree encoding is a per-instance structural artifact:
            # cached here, every query in a session reuses it.
            return ucq_probability_via_automaton(
                query, tid, encoding=self.tree_encoding_of(tid.instance)
            )
        # brute_force / safe_plan: no cross-call artifacts to reuse.
        return one_shot_probability(query, tid, method=method)


_DEFAULT_ENGINE: CompilationEngine | None = None


def default_engine() -> CompilationEngine:
    """The process-wide default engine (created lazily on first use)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = CompilationEngine()
    return _DEFAULT_ENGINE
