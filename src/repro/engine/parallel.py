"""Sharded parallel evaluation on top of :class:`CompilationEngine`.

The single-process engine memoizes structural artifacts per instance, so the
natural unit of parallelism is not the individual ``(query, instance)`` pair
but the *instance group*: all items touching one instance should land in the
same worker, where they share that worker's cached Gaifman graph,
decompositions, fact orders, and lineages.  :func:`shard_workload` partitions
a workload accordingly (greedy least-loaded assignment of instance groups),
and :class:`ParallelEngine` runs each shard in a ``multiprocessing`` worker
that owns a private :class:`CompilationEngine`, then merges the values (in
the original workload order) and the per-worker :class:`CacheStats` into a
single :class:`ParallelReport`.

Two execution regimes:

* ``workers == 1`` runs inline in the calling process on a local engine — no
  subprocess, no pickling, **no shared-memory segments**; semantics are
  identical, which keeps debugging and single-core environments honest;
* ``workers > 1`` uses a lazily created, persistent pool (``fork`` start
  method when the platform has it, ``spawn`` otherwise): the workers — and
  their engines' caches — survive across calls, so repeated workloads
  against hot instances keep their artifacts warm.  ``close()`` (or use as
  a context manager) tears the pool down, **clears the inline engine's
  caches deterministically**, and unlinks every shared-memory segment the
  run created (including orphans left by crashed workers, swept by the
  plane prefix).

The pool is hand-rolled (:class:`_WorkerPool`), not ``multiprocessing.Pool``,
because ``Pool.map`` simply never returns when a worker dies mid-task.  Each
worker gets its own duplex pipe, the parent waits on the pipes *and* the
process sentinels, and a dead worker is detected immediately: its
shared-memory leftovers are swept (keeping segments already merged into
completed outcomes), a replacement is spawned, and only the affected shard
is re-submitted — bounded per-shard retries with exponential backoff, then
a typed :class:`~repro.errors.WorkerCrashError`.  Worker-reported
``MemoryError`` / :class:`~repro.errors.SegmentError` failures are retried
the same way (a segment failure additionally triggers the caller's recovery
hook, e.g. republishing the reweight artifact); any other worker error is
re-raised in the parent.  Outcomes are keyed by shard index and merged
exactly once, so a worker that answered and *then* died cannot double-count.

The data plane is columnar.  Compiled artifacts cross the process boundary
as :class:`repro.booleans.columnar.ColumnarOBDD` columns inside
``multiprocessing.shared_memory`` segments (:mod:`repro.engine.shm`): a
worker *publishes* the flat ``var|lo|hi`` buffer and ships back only a tiny
:class:`~repro.engine.shm.SegmentHandle`; the parent *attaches* zero-copy.
:meth:`ParallelEngine.reweight_many` runs the same plane in the other
direction — the parent publishes one compiled artifact, every worker
attaches to it and runs vectorized columnar sweeps for its share of the
probability assignments, which is the batch re-weighting workload where
per-worker cost is exactly "an attach plus a sweep".

Because the hot artifacts are acyclic int arrays rather than node-object
graphs, workers run with the cyclic garbage collector frozen and disabled
(``gc.freeze()`` + ``gc.disable()`` in the initializer, on by default):
full GC passes rescanning millions of cached nodes were a measured ~2x drag
on allocation-heavy shards.

Everything else crossing the process boundary is plain picklable data:
instances and TID instances (content-fingerprinted, so worker-side caching
behaves exactly as in-process caching), queries (frozen dataclasses),
``Fraction`` results, segment handles, and ``CacheStats`` counters.
"""

from __future__ import annotations

import gc
import itertools
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.booleans.columnar import ColumnarOBDD
from repro.data.instance import Instance
from repro.data.tid import ProbabilisticInstance
from repro.engine.session import (
    CacheStats,
    CompilationEngine,
    Query,
    merge_cache_stats,
)
from repro.engine.shm import (
    SegmentHandle,
    SegmentPlane,
    attach_segment,
    publish_segment,
)
from repro.errors import CompilationError, SegmentError, WorkerCrashError
from repro.provenance.compile_obdd import CompiledOBDD

ProbabilityItem = tuple[Query, ProbabilisticInstance]
CompileItem = tuple[Query, Instance]
Shard = list[tuple[int, tuple]]
ShardOutcome = tuple[list[tuple[int, Any]], dict[str, CacheStats], dict[str, int]]
ShardRunner = Callable[[tuple[Shard, Any]], ShardOutcome]

_TRANSPORTS = ("auto", "shm", "object")


def available_workers() -> int:
    """How many workers the host can actually run in parallel.

    Prefers the scheduling affinity mask (which honors cgroup/container
    limits) over the raw CPU count.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def shard_workload(
    items: Sequence[tuple],
    shard_count: int,
    group_key: Callable[[tuple], str] | None = None,
) -> list[list[tuple[int, tuple]]]:
    """Partition indexed work items into at most ``shard_count`` shards.

    Items are grouped by the fingerprint of their instance (the second
    element of each pair by default) so that one instance's structural
    artifacts are computed by as few workers as possible; a group larger than
    the balanced shard size ``ceil(len(items) / shard_count)`` is split into
    chunks of that size, so a batch against a *single* instance still spreads
    over all shards (each worker then recomputes that instance's artifacts
    once — duplicated structural work, parallelized compilation work).  The
    chunks are assigned largest-first to the currently least-loaded shard.
    Each shard entry keeps the item's index in the original workload so
    results can be merged back in order.  Empty shards are dropped.
    """
    if shard_count < 1:
        raise CompilationError("shard_count must be at least 1")
    if group_key is None:
        group_key = lambda item: item[1].fingerprint  # noqa: E731
    groups: dict[str, list[tuple[int, tuple]]] = {}
    for index, item in enumerate(items):
        groups.setdefault(group_key(item), []).append((index, item))
    target = -(-len(items) // shard_count)  # ceil division
    chunks: list[list[tuple[int, tuple]]] = []
    for group in groups.values():
        for start in range(0, len(group), target):
            chunks.append(group[start : start + target])
    shards: list[list[tuple[int, tuple]]] = [[] for _ in range(shard_count)]
    for chunk in sorted(chunks, key=len, reverse=True):
        least_loaded = min(shards, key=len)
        least_loaded.extend(chunk)
    return [shard for shard in shards if shard]


@dataclass(frozen=True)
class ParallelReport:
    """The merged outcome of one sharded run.

    ``values`` follow the original workload order; ``workers`` is the
    engine's configured worker count (``shard_count`` is how many shards the
    workload actually produced — it can be smaller); ``worker_stats`` holds
    one ``CacheStats`` dictionary per shard (in shard order), and ``stats``
    is their pointwise sum.
    """

    values: tuple[Any, ...]
    workers: int
    shard_sizes: tuple[int, ...]
    worker_stats: tuple[dict[str, CacheStats], ...]
    worker_routes: tuple[dict[str, int], ...] = ()

    @property
    def shard_count(self) -> int:
        return len(self.shard_sizes)

    @property
    def stats(self) -> dict[str, CacheStats]:
        return merge_cache_stats(self.worker_stats)

    @property
    def items(self) -> int:
        return sum(self.shard_sizes)

    @property
    def route_mix(self) -> dict[str, int]:
        """Pointwise sum of the per-shard ``method="auto"`` route counts."""
        merged: dict[str, int] = {}
        for routes in self.worker_routes:
            for route, count in routes.items():
                merged[route] = merged.get(route, 0) + count
        return merged


# -- worker-side plumbing -----------------------------------------------------
#
# The pool initializer builds one CompilationEngine per worker process; the
# shard runners look it up through a module global.  Under the ``fork`` start
# method the workload shards themselves are the only data pickled per task.
# Workers also carry the plane prefix (for naming the segments they publish)
# and a small LRU of attached shared artifacts for the reweight runner.

_WORKER_ENGINE: CompilationEngine | None = None
_WORKER_PLANE_PREFIX: str | None = None
_WORKER_SEGMENT_SERIAL = itertools.count(1)
_WORKER_ATTACHMENTS: dict[str, ColumnarOBDD] = {}
_WORKER_ATTACHMENT_LIMIT = 8


def _init_worker(
    engine_options: dict[str, Any],
    plane_prefix: str | None,
    freeze_gc: bool,
    fault_plan: Any = None,
) -> None:
    global _WORKER_ENGINE, _WORKER_PLANE_PREFIX
    _WORKER_ENGINE = CompilationEngine(**engine_options)
    if fault_plan is not None and _WORKER_ENGINE.store is not None:
        # The chaos suite's disk faults reach worker-opened stores too; the
        # store path travels as a plain string in engine_options, so the
        # plan is attached after construction.
        _WORKER_ENGINE.store.fault_plan = fault_plan
    _WORKER_PLANE_PREFIX = plane_prefix
    _WORKER_ATTACHMENTS.clear()
    if freeze_gc:
        # The hot artifacts are flat int columns (acyclic); full cyclic-GC
        # passes over the interpreter state and the engine caches are pure
        # overhead in a worker whose lifetime the pool already bounds.
        gc.collect()
        gc.freeze()
        gc.disable()


def _worker_engine() -> CompilationEngine:
    if _WORKER_ENGINE is None:  # pragma: no cover - initializer always ran
        raise CompilationError("parallel worker used before initialization")
    return _WORKER_ENGINE


def _worker_segment_name() -> str:
    if _WORKER_PLANE_PREFIX is None:  # pragma: no cover - initializer always ran
        raise CompilationError("worker has no segment plane prefix")
    return f"{_WORKER_PLANE_PREFIX}-w{os.getpid()}-{next(_WORKER_SEGMENT_SERIAL)}"


def _worker_attachment(handle: SegmentHandle) -> ColumnarOBDD:
    """Attach (once) to a parent-published artifact; small per-worker LRU."""
    key = handle.name if handle.name is not None else f"inline-{handle.root}"
    artifact = _WORKER_ATTACHMENTS.get(key)
    if artifact is None:
        artifact = attach_segment(handle)
        _WORKER_ATTACHMENTS[key] = artifact
        while len(_WORKER_ATTACHMENTS) > _WORKER_ATTACHMENT_LIMIT:
            _WORKER_ATTACHMENTS.pop(next(iter(_WORKER_ATTACHMENTS)))
    return artifact


def _stats_snapshot(engine: CompilationEngine) -> dict[str, CacheStats]:
    return {name: stats.copy() for name, stats in engine.stats.items()}


def _routes_snapshot(engine: CompilationEngine) -> dict[str, int]:
    return engine.route_mix()


def _reset_stats(engine: CompilationEngine) -> None:
    """Zero the counters (keeping the caches) so a shard reports its own work.

    One pool process may execute several shards; without the reset, a later
    shard's snapshot would re-count the earlier shards' hits and misses and
    the merged report would no longer be the exact sum over the workload.
    The router's route counts are reset with the cache counters.
    """
    for stats in engine.stats.values():
        stats.hits = stats.misses = 0
    engine.route_counts.clear()


def _run_probability_shard(payload: tuple[Shard, str]) -> ShardOutcome:
    shard, method = payload
    engine = _worker_engine()
    _reset_stats(engine)
    results = [(index, engine.probability(query, tid, method)) for index, (query, tid) in shard]
    return results, _stats_snapshot(engine), _routes_snapshot(engine)


def _run_compile_shard(payload: tuple[Shard, tuple[bool, str]]) -> ShardOutcome:
    shard, (use_path_decomposition, transport) = payload
    engine = _worker_engine()
    _reset_stats(engine)
    results: list[tuple[int, Any]] = []
    for index, (query, instance) in shard:
        if transport == "shm":
            columnar = engine.columnar(query, instance, use_path_decomposition)
            results.append((index, publish_segment(columnar, _worker_segment_name())))
        elif transport == "columnar":
            # Inline stand-in for "shm": same columnar representation, but
            # with no process boundary there is no segment to publish.
            results.append((index, engine.columnar(query, instance, use_path_decomposition)))
        else:
            results.append((index, engine.compile(query, instance, use_path_decomposition)))
    return results, _stats_snapshot(engine), _routes_snapshot(engine)


def _run_reweight_shard(payload: tuple[Shard, tuple[SegmentHandle, bool]]) -> ShardOutcome:
    """Sweep one shared artifact under this shard's probability assignments."""
    shard, (handle, exact) = payload
    engine = _worker_engine()
    _reset_stats(engine)
    artifact = _worker_attachment(handle)
    # One matrix sweep over the whole shard: in the float regime the batch
    # kernel amortizes per-level overhead across every assignment at once.
    values = artifact.probability_many(
        [probabilities for _, (probabilities,) in shard], exact=exact
    )
    results = [(index, value) for (index, _), value in zip(shard, values)]
    return results, _stats_snapshot(engine), _routes_snapshot(engine)


# -- the crash-aware pool ------------------------------------------------------


def _worker_loop(
    connection: Connection,
    engine_options: dict[str, Any],
    plane_prefix: str | None,
    freeze_gc: bool,
    fault_plan: Any = None,
) -> None:
    """Entry point of one pool worker process.

    Requests arrive as ``((epoch, shard_index), runner, payload)`` and are
    answered with ``(task_key, ok, outcome_or_error)``; ``None`` shuts the
    worker down.  Task failures are *reported*, never allowed to kill the
    loop — the parent owns the retry / re-raise decision.  ``fault_plan``
    (tests only) installs the deterministic injectors of
    :mod:`repro.testing.faults` around each task.
    """
    faults = None
    if fault_plan is not None:
        from repro.testing.faults import WorkerFaults

        faults = WorkerFaults(fault_plan)
    _init_worker(engine_options, plane_prefix, freeze_gc, fault_plan)
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):  # pragma: no cover - parent went away
            break
        if message is None:
            break
        task_key, runner, payload = message
        try:
            if faults is not None:
                faults.on_task_start()
            outcome = runner(payload)
            if faults is not None:
                faults.before_result()
            reply = (task_key, True, outcome)
        # repro-analysis: allow(EXCEPT001): the worker loop must survive any task failure and report it; the parent classifies the error and owns the retry/re-raise decision
        except Exception as error:
            reply = (task_key, False, error)
        try:
            connection.send(reply)
        # repro-analysis: allow(EXCEPT001): an unpicklable outcome or error must still produce a reply, or the parent would wait on this task forever
        except Exception:
            if reply[1]:
                fallback = f"unpicklable shard outcome ({type(reply[2]).__name__})"
            else:
                fallback = f"{type(reply[2]).__name__}: {reply[2]}"
            connection.send((task_key, False, fallback))
    connection.close()


def _segment_names(outcomes: Iterable[ShardOutcome]) -> set[str]:
    """Segment names referenced by completed outcomes (must survive sweeps)."""
    names: set[str] = set()
    for results, _, _ in outcomes:
        for _, value in results:
            if isinstance(value, SegmentHandle) and value.name is not None:
                names.add(value.name)
    return names


class _PoolWorker:
    """One live worker process plus the parent's end of its pipe."""

    __slots__ = ("process", "connection")

    def __init__(self, process: Any, connection: Connection) -> None:
        self.process = process
        self.connection = connection


class _WorkerPool:
    """A crash-aware replacement for ``multiprocessing.Pool`` (see the
    module docstring): per-worker pipes, sentinel-watched dispatch,
    exactly-once merge by shard index, bounded shard retries, respawn."""

    def __init__(
        self,
        context: Any,
        worker_count: int,
        worker_args: tuple,
        max_shard_retries: int,
        retry_backoff: float,
        plane: SegmentPlane | None,
    ) -> None:
        self._context = context
        self._worker_count = worker_count
        self._worker_args = worker_args
        self._max_shard_retries = max_shard_retries
        self._retry_backoff = retry_backoff
        self._plane = plane
        self._workers: list[_PoolWorker] = []
        self._epoch = 0

    def _spawn(self) -> _PoolWorker:
        parent_end, child_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_loop,
            args=(child_end, *self._worker_args),
            daemon=True,
        )
        process.start()
        child_end.close()
        return _PoolWorker(process, parent_end)

    def _ensure_workers(self) -> None:
        self._workers = [w for w in self._workers if w.process.is_alive()]
        while len(self._workers) < self._worker_count:
            self._workers.append(self._spawn())

    def run(
        self,
        shards: list[Shard],
        runner: ShardRunner,
        extra: Any,
        recover: Callable[[], Any] | None = None,
    ) -> dict[int, ShardOutcome]:
        """Execute every shard, retrying around crashes; outcomes by index.

        Task keys carry the run's epoch, so replies from a run that was
        abandoned mid-flight (an error propagated to the caller while
        workers were still busy) are recognized and discarded instead of
        being merged into the wrong run.
        """
        self._ensure_workers()
        self._epoch += 1
        epoch = self._epoch
        pending: deque[int] = deque(range(len(shards)))
        retries = {index: 0 for index in range(len(shards))}
        outcomes: dict[int, ShardOutcome] = {}
        busy: dict[_PoolWorker, int] = {}
        current_extra = extra

        def requeue(shard_index: int, cause: BaseException | str) -> None:
            retries[shard_index] += 1
            attempt = retries[shard_index]
            if attempt > self._max_shard_retries:
                raise WorkerCrashError(
                    f"shard {shard_index} failed {attempt} times"
                    f" ({self._max_shard_retries} retries allowed);"
                    f" last cause: {cause}"
                ) from (cause if isinstance(cause, BaseException) else None)
            if self._retry_backoff > 0.0:
                time.sleep(min(self._retry_backoff * (1 << (attempt - 1)), 1.0))
            pending.appendleft(shard_index)

        def absorb(worker: _PoolWorker, message: tuple) -> None:
            nonlocal current_extra
            (message_epoch, shard_index), ok, payload = message
            busy.pop(worker, None)
            if message_epoch != epoch or shard_index in outcomes:
                return  # stale or duplicate reply: merged exactly once
            if ok:
                outcomes[shard_index] = payload
                return
            if isinstance(payload, (MemoryError, SegmentError)):
                # Retryable: transient allocation pressure, or a segment
                # that a crashed publisher / racing sweep invalidated.
                if isinstance(payload, SegmentError) and recover is not None:
                    current_extra = recover()
                requeue(shard_index, payload)
                return
            if isinstance(payload, BaseException):
                raise payload
            raise WorkerCrashError(f"worker failed with unpicklable error: {payload}")

        def bury(worker: _PoolWorker) -> None:
            # Salvage first: results the worker sent before dying still count.
            try:
                while worker.connection.poll():
                    absorb(worker, worker.connection.recv())
            except (EOFError, OSError):
                pass
            shard_index = busy.pop(worker, None)
            self._workers.remove(worker)
            worker.process.join()
            pid = worker.process.pid
            try:
                worker.connection.close()
            except OSError:  # pragma: no cover - already closed
                pass
            if self._plane is not None and pid is not None:
                # Reclaim the dead worker's segments — except those already
                # merged into completed outcomes, which the parent will adopt.
                self._plane.sweep_worker_orphans(pid, _segment_names(outcomes.values()))
            self._workers.append(self._spawn())
            if shard_index is not None and shard_index not in outcomes:
                requeue(
                    shard_index,
                    f"worker pid {pid} died (exit code {worker.process.exitcode})",
                )

        while len(outcomes) < len(shards):
            for worker in self._workers:
                if worker not in busy and pending:
                    shard_index = pending.popleft()
                    try:
                        worker.connection.send(
                            (
                                (epoch, shard_index),
                                runner,
                                (shards[shard_index], current_extra),
                            )
                        )
                    except (BrokenPipeError, OSError):
                        # The death surfaces through the sentinel below.
                        pending.appendleft(shard_index)
                        continue
                    busy[worker] = shard_index
            by_connection = {w.connection: w for w in self._workers}
            by_sentinel = {w.process.sentinel: w for w in self._workers}
            dead: list[_PoolWorker] = []
            for item in connection_wait(list(by_connection) + list(by_sentinel)):
                worker = by_connection.get(item)
                if worker is not None:
                    try:
                        message = worker.connection.recv()
                    except (EOFError, OSError):
                        if worker not in dead:
                            dead.append(worker)
                        continue
                    absorb(worker, message)
                    continue
                worker = by_sentinel.get(item)  # type: ignore[arg-type]
                if worker is not None and worker not in dead:
                    dead.append(worker)
            for worker in dead:
                bury(worker)
        return outcomes

    def close(self) -> None:
        """Shut every worker down: polite request, then escalating force."""
        workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.connection.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
        for worker in workers:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            if worker.process.is_alive():  # pragma: no cover - terminate sufficed
                worker.process.kill()
                worker.process.join(1.0)
            try:
                worker.connection.close()
            except OSError:  # pragma: no cover - already closed
                pass


class ParallelEngine:
    """Shard ``(query, instance)`` workloads across engine-owning workers.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the host's available parallelism.
        ``workers=1`` executes inline (no subprocess, no segments).
    engine_options:
        Keyword arguments forwarded to each worker's
        :class:`CompilationEngine` (cache bounds).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it (cheap on Linux), else the platform default.
    use_shared_memory:
        Ship compiled artifacts through shared-memory segments (columnar
        zero-copy transport) instead of pickling them.  Defaults to True;
        only the pool regime ever creates segments.
    freeze_worker_gc:
        Freeze and disable the cyclic garbage collector in pool workers
        (default True); the calling process is never touched.
    max_shard_retries:
        How many times one shard may be re-submitted after a worker crash
        or a retryable worker failure (``MemoryError`` /
        :class:`~repro.errors.SegmentError`) before the run raises
        :class:`~repro.errors.WorkerCrashError`.
    retry_backoff:
        Base seconds of the exponential backoff between a shard's retries
        (``backoff * 2**(attempt-1)``, capped at 1s); 0 disables it.
    fault_plan:
        Deterministic fault-injection plan (tests only; see
        :mod:`repro.testing.faults`), shipped to every worker and consulted
        by the parent's reweight publishing.  ``None`` — the default — adds
        no hooks anywhere.
    store:
        A persistent artifact store directory shared by every worker: a
        path (string or ``Path``), or an opened
        :class:`~repro.store.ArtifactStore` whose directory is reused.
        Each worker's :class:`CompilationEngine` opens the store itself (a
        path string is what crosses the process boundary), so compiled
        artifacts persist across runs *and* across workers; a worker that
        loads a stored columnar artifact publishes it into shared memory
        straight from the file mapping — no node-graph deserialization
        anywhere on the path.
    """

    def __init__(
        self,
        workers: int | None = None,
        engine_options: Mapping[str, Any] | None = None,
        start_method: str | None = None,
        use_shared_memory: bool = True,
        freeze_worker_gc: bool = True,
        max_shard_retries: int = 2,
        retry_backoff: float = 0.05,
        fault_plan: Any = None,
        store: Any = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise CompilationError("workers must be at least 1")
        if max_shard_retries < 0:
            raise CompilationError("max_shard_retries must be at least 0")
        if retry_backoff < 0.0:
            raise CompilationError("retry_backoff must not be negative")
        self.workers = workers if workers is not None else available_workers()
        self.engine_options = dict(engine_options or {})
        if store is not None:
            # Workers rebuild their engines from pickled options, so the
            # store crosses the process boundary as its directory path.
            # (isinstance, not getattr: Path.root is the *filesystem* root.)
            from repro.store import ArtifactStore

            path = store.root if isinstance(store, ArtifactStore) else store
            self.engine_options.setdefault("store", str(path))
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.use_shared_memory = use_shared_memory
        self.freeze_worker_gc = freeze_worker_gc
        self.max_shard_retries = max_shard_retries
        self.retry_backoff = retry_backoff
        self.fault_plan = fault_plan
        self.last_report: ParallelReport | None = None
        self._pool: _WorkerPool | None = None
        self._plane: SegmentPlane | None = None
        self._inline_engine: CompilationEngine | None = None

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Tear down the pool, the segment plane, and every worker cache.

        Deterministic by design: the pool processes (and with them every
        worker engine's cached node graphs) are terminated, the inline
        engine's caches are *cleared* — not merely dereferenced, so no dead
        engine keeps millions of cached nodes alive for later GC passes to
        rescan — and every shared-memory segment this engine created is
        unlinked (a prefix sweep also reclaims segments orphaned by worker
        crashes).  Shared-columnar artifacts returned by earlier calls become
        invalid at that point; take a :meth:`ColumnarOBDD.copy` first if one
        must outlive the engine.  The engine itself stays usable: pools,
        plane, and inline engine are rebuilt lazily on the next call.

        Exception-safe by construction (``try``/``finally`` chain): even
        when tearing the pool down fails — e.g. the context manager body
        raised mid-batch and workers are wedged — the segment plane is
        still closed (so no ``/dev/shm`` leak) and the inline engine's
        caches are still cleared.
        """
        try:
            if self._pool is not None:
                self._pool.close()
        finally:
            self._pool = None
            try:
                if self._plane is not None:
                    self._plane.close()
            finally:
                self._plane = None
                if self._inline_engine is not None:
                    self._inline_engine.clear()
                    self._inline_engine = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def segment_plane(self) -> SegmentPlane:
        """The engine's (lazily created) shared-memory segment plane."""
        if self._plane is None:
            self._plane = SegmentPlane()
        return self._plane

    # -- generic sharded execution -------------------------------------------

    def _run(
        self,
        items: Sequence[tuple],
        runner: ShardRunner,
        extra: Any,
        group_key: Callable[[tuple], str] | None = None,
        extra_inline: Any = None,
        recover: Callable[[], Any] | None = None,
    ) -> ParallelReport:
        """Shard ``items`` and execute; ``extra_inline`` (when not None)
        replaces ``extra`` in the inline regime — the compile path uses it to
        force the object transport where no process boundary exists.
        ``recover`` rebuilds ``extra`` after a retryable segment failure."""
        if not items:
            report = ParallelReport(
                values=(),
                workers=self.workers,
                shard_sizes=(),
                worker_stats=(),
                worker_routes=(),
            )
            self.last_report = report
            return report
        shards = shard_workload(items, self.workers, group_key)
        if self.workers == 1 or len(shards) == 1:
            chosen = extra if extra_inline is None else extra_inline
            report = self._run_inline(shards, runner, chosen)
        else:
            report = self._run_pool(shards, runner, extra, recover)
        self.last_report = report
        return report

    def _ensure_inline_engine(self) -> CompilationEngine:
        if self._inline_engine is None:
            self._inline_engine = CompilationEngine(**self.engine_options)
            if self.fault_plan is not None and self._inline_engine.store is not None:
                # Mirror _init_worker: the chaos suite's disk faults reach
                # the inline (workers == 1) engine's store too.
                self._inline_engine.store.fault_plan = self.fault_plan
        return self._inline_engine

    def _run_inline(
        self, shards: list[Shard], runner: ShardRunner, extra: Any
    ) -> ParallelReport:
        global _WORKER_ENGINE
        previous = _WORKER_ENGINE
        _WORKER_ENGINE = self._ensure_inline_engine()
        try:
            outcomes = [runner((shard, extra)) for shard in shards]
        finally:
            _WORKER_ENGINE = previous
        return self._merge(shards, outcomes)

    def _run_pool(
        self,
        shards: list[Shard],
        runner: ShardRunner,
        extra: Any,
        recover: Callable[[], Any] | None = None,
    ) -> ParallelReport:
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            plane = self.segment_plane() if self.use_shared_memory else None
            self._pool = _WorkerPool(
                context,
                self.workers,
                (
                    self.engine_options,
                    plane.prefix if plane is not None else None,
                    self.freeze_worker_gc,
                    self.fault_plan,
                ),
                max_shard_retries=self.max_shard_retries,
                retry_backoff=self.retry_backoff,
                plane=plane,
            )
        outcomes = self._pool.run(shards, runner, extra, recover)
        return self._merge(shards, [outcomes[index] for index in range(len(shards))])

    def _merge(
        self, shards: list[Shard], outcomes: list[ShardOutcome]
    ) -> ParallelReport:
        total = sum(len(shard) for shard in shards)
        values: list[Any] = [None] * total
        worker_stats: list[dict[str, CacheStats]] = []
        worker_routes: list[dict[str, int]] = []
        for results, stats, routes in outcomes:
            for index, value in results:
                values[index] = value
            worker_stats.append(stats)
            worker_routes.append(routes)
        return ParallelReport(
            values=tuple(values),
            workers=self.workers,
            shard_sizes=tuple(len(shard) for shard in shards),
            worker_stats=tuple(worker_stats),
            worker_routes=tuple(worker_routes),
        )

    # -- probability workloads ------------------------------------------------

    def map_probability(
        self, pairs: Sequence[ProbabilityItem], method: str = "auto"
    ) -> ParallelReport:
        """Evaluate a workload of ``(query, tid)`` pairs; full report."""
        return self._run(pairs, _run_probability_shard, method)

    def probability_many(
        self,
        queries: Sequence[Query],
        tid: ProbabilisticInstance,
        method: str = "auto",
    ) -> list[Fraction | float]:
        """Probabilities of a batch of queries on one TID instance.

        Mirrors :meth:`CompilationEngine.probability_many`; the detailed
        :class:`ParallelReport` (shard sizes, per-worker cache statistics) is
        kept in :attr:`last_report`.
        """
        report = self.map_probability([(query, tid) for query in queries], method)
        return list(report.values)

    # -- compilation workloads -------------------------------------------------

    def map_compile(
        self,
        pairs: Sequence[CompileItem],
        use_path_decomposition: bool = False,
        transport: str = "auto",
    ) -> ParallelReport:
        """Compile a workload of ``(query, instance)`` pairs; full report.

        Transport of the compiled artifacts back to the caller:

        * ``"shm"`` — workers publish columnar columns into shared-memory
          segments and return handles; the parent attaches zero-copy, so the
          values are :class:`~repro.booleans.columnar.ColumnarOBDD` views
          owned by this engine (valid until :meth:`close`);
        * ``"object"`` — the artifacts are pickled back as
          :class:`~repro.provenance.compile_obdd.CompiledOBDD` node graphs
          (the pre-columnar behavior);
        * ``"auto"`` (default) — ``"shm"`` when this engine runs a pool and
          shared memory is enabled, else ``"object"``.

        The inline regime (``workers=1``, or a workload that collapses to a
        single shard) never creates segments — there is no process boundary
        to cross.  ``"auto"`` resolves to ``"object"`` there; an explicit
        ``"shm"`` still honors the *representation* and returns
        :class:`ColumnarOBDD` values, built directly without a segment, so
        the value types a caller sees depend only on the transport they
        asked for, never on how the workload happened to shard.
        """
        if transport not in _TRANSPORTS:
            raise CompilationError(
                f"unknown transport {transport!r}; use one of {_TRANSPORTS}"
            )
        if transport == "auto":
            transport = "shm" if self.use_shared_memory else "object"
            inline_transport = "object"
        elif transport == "shm":
            inline_transport = "columnar"
        else:
            inline_transport = transport
        if transport == "shm" and not self.use_shared_memory:
            raise CompilationError("shared-memory transport is disabled on this engine")
        report = self._run(
            pairs,
            _run_compile_shard,
            (bool(use_path_decomposition), transport),
            extra_inline=(bool(use_path_decomposition), inline_transport),
        )
        if any(isinstance(value, SegmentHandle) for value in report.values):
            plane = self.segment_plane()
            report = ParallelReport(
                values=tuple(
                    plane.adopt(value) if isinstance(value, SegmentHandle) else value
                    for value in report.values
                ),
                workers=report.workers,
                shard_sizes=report.shard_sizes,
                worker_stats=report.worker_stats,
                worker_routes=report.worker_routes,
            )
            self.last_report = report
        return report

    def compile_many(
        self,
        queries: Sequence[Query],
        instance: Instance,
        use_path_decomposition: bool = False,
        transport: str = "auto",
    ) -> list[CompiledOBDD | ColumnarOBDD]:
        """Compiled artifacts of a batch of queries against one instance."""
        report = self.map_compile(
            [(query, instance) for query in queries], use_path_decomposition, transport
        )
        return list(report.values)

    # -- batch re-weighting over one shared artifact ---------------------------

    def reweight_many(
        self,
        compiled: CompiledOBDD | ColumnarOBDD,
        probability_maps: Sequence[Mapping],
        exact: bool = True,
    ) -> list[Fraction | float]:
        """Probabilities of one compiled artifact under many weightings.

        The inverse direction of :meth:`map_compile`'s transport: the parent
        publishes the artifact's columns *once* into a shared-memory segment,
        and every worker attaches to that one segment and runs columnar
        sweeps for its shard of ``probability_maps`` — per-worker cost is an
        attach plus a vectorized sweep per assignment, never a deserialize.
        This is the re-weighting workload (same lineage, changing fact
        probabilities) that motivates separating diagram structure from
        weights.  ``workers=1`` evaluates inline without any segment.
        """
        columnar = (
            compiled if isinstance(compiled, ColumnarOBDD) else compiled.to_columnar()
        )
        items = [(probabilities,) for probabilities in probability_maps]
        if not items:
            self._run(items, _run_reweight_shard, None)
            return []
        if self.workers == 1 or not self.use_shared_memory:
            self._ensure_inline_engine()
            values = columnar.probability_many(
                [probabilities for (probabilities,) in items], exact=exact
            )
            self.last_report = ParallelReport(
                values=tuple(values),
                workers=self.workers,
                shard_sizes=(len(items),),
                worker_stats=(_stats_snapshot(self._inline_engine),),
                worker_routes=(_routes_snapshot(self._inline_engine),),
            )
            return values
        handle = self._publish_reweight_artifact(columnar)
        report = self._run(
            items,
            _run_reweight_shard,
            (handle, exact),
            group_key=_reweight_group_key,
            extra_inline=(handle, exact),
            # A worker that cannot attach (absent/corrupt segment) reports a
            # retryable SegmentError; republishing under a fresh name is the
            # recovery — retried shards then attach to the new segment.
            recover=lambda: (self._publish_reweight_artifact(columnar), exact),
        )
        return list(report.values)

    def _publish_reweight_artifact(self, columnar: ColumnarOBDD) -> SegmentHandle:
        handle = self.segment_plane().publish(columnar)
        if self.fault_plan is not None:
            from repro.testing.faults import apply_parent_segment_faults

            apply_parent_segment_faults(self.fault_plan, handle)
        return handle


_REWEIGHT_COUNTER = itertools.count()


def _reweight_group_key(item: tuple) -> str:
    """Reweight items share one artifact; spread them evenly over shards."""
    return str(next(_REWEIGHT_COUNTER))
