"""Sharded parallel evaluation on top of :class:`CompilationEngine`.

The single-process engine memoizes structural artifacts per instance, so the
natural unit of parallelism is not the individual ``(query, instance)`` pair
but the *instance group*: all items touching one instance should land in the
same worker, where they share that worker's cached Gaifman graph,
decompositions, fact orders, and lineages.  :func:`shard_workload` partitions
a workload accordingly (greedy least-loaded assignment of instance groups),
and :class:`ParallelEngine` runs each shard in a ``multiprocessing`` worker
that owns a private :class:`CompilationEngine`, then merges the values (in
the original workload order) and the per-worker :class:`CacheStats` into a
single :class:`ParallelReport`.

Two execution regimes:

* ``workers == 1`` runs inline in the calling process on a local engine — no
  subprocess, no pickling; semantics are identical, which keeps debugging and
  single-core environments honest;
* ``workers > 1`` uses a lazily created, persistent pool (``fork`` start
  method when the platform has it, ``spawn`` otherwise): the workers — and
  their engines' caches — survive across calls, so repeated workloads
  against hot instances keep their artifacts warm.  ``close()`` (or use as
  a context manager) releases the pool.

Everything crossing the process boundary is plain picklable data: instances
and TID instances (content-fingerprinted, so worker-side caching behaves
exactly as in-process caching), queries (frozen dataclasses), ``Fraction``
results, :class:`CompiledOBDD` artifacts, and ``CacheStats`` counters.

Worker-side evaluation bottoms out in the iterative fused sweep kernel of
:meth:`repro.booleans.obdd.OBDD.sweep` (via ``CompilationEngine``), so deep
variable orders are safe in workers too, and the ``method`` string —
including the ``obdd_float`` fast path — passes through unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from fractions import Fraction
from multiprocessing.pool import Pool
from typing import Any, Callable, Mapping, Sequence

from repro.data.instance import Instance
from repro.data.tid import ProbabilisticInstance
from repro.engine.session import (
    CacheStats,
    CompilationEngine,
    Query,
    merge_cache_stats,
)
from repro.errors import CompilationError
from repro.provenance.compile_obdd import CompiledOBDD

ProbabilityItem = tuple[Query, ProbabilisticInstance]
CompileItem = tuple[Query, Instance]
Shard = list[tuple[int, tuple]]
ShardOutcome = tuple[list[tuple[int, Any]], dict[str, CacheStats]]
ShardRunner = Callable[[tuple[Shard, Any]], ShardOutcome]


def available_workers() -> int:
    """How many workers the host can actually run in parallel.

    Prefers the scheduling affinity mask (which honors cgroup/container
    limits) over the raw CPU count.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def shard_workload(
    items: Sequence[tuple],
    shard_count: int,
    group_key: Callable[[tuple], str] | None = None,
) -> list[list[tuple[int, tuple]]]:
    """Partition indexed work items into at most ``shard_count`` shards.

    Items are grouped by the fingerprint of their instance (the second
    element of each pair by default) so that one instance's structural
    artifacts are computed by as few workers as possible; a group larger than
    the balanced shard size ``ceil(len(items) / shard_count)`` is split into
    chunks of that size, so a batch against a *single* instance still spreads
    over all shards (each worker then recomputes that instance's artifacts
    once — duplicated structural work, parallelized compilation work).  The
    chunks are assigned largest-first to the currently least-loaded shard.
    Each shard entry keeps the item's index in the original workload so
    results can be merged back in order.  Empty shards are dropped.
    """
    if shard_count < 1:
        raise CompilationError("shard_count must be at least 1")
    if group_key is None:
        group_key = lambda item: item[1].fingerprint  # noqa: E731
    groups: dict[str, list[tuple[int, tuple]]] = {}
    for index, item in enumerate(items):
        groups.setdefault(group_key(item), []).append((index, item))
    target = -(-len(items) // shard_count)  # ceil division
    chunks: list[list[tuple[int, tuple]]] = []
    for group in groups.values():
        for start in range(0, len(group), target):
            chunks.append(group[start : start + target])
    shards: list[list[tuple[int, tuple]]] = [[] for _ in range(shard_count)]
    for chunk in sorted(chunks, key=len, reverse=True):
        least_loaded = min(shards, key=len)
        least_loaded.extend(chunk)
    return [shard for shard in shards if shard]


@dataclass(frozen=True)
class ParallelReport:
    """The merged outcome of one sharded run.

    ``values`` follow the original workload order; ``workers`` is the
    engine's configured worker count (``shard_count`` is how many shards the
    workload actually produced — it can be smaller); ``worker_stats`` holds
    one ``CacheStats`` dictionary per shard (in shard order), and ``stats``
    is their pointwise sum.
    """

    values: tuple[Any, ...]
    workers: int
    shard_sizes: tuple[int, ...]
    worker_stats: tuple[dict[str, CacheStats], ...]

    @property
    def shard_count(self) -> int:
        return len(self.shard_sizes)

    @property
    def stats(self) -> dict[str, CacheStats]:
        return merge_cache_stats(self.worker_stats)

    @property
    def items(self) -> int:
        return sum(self.shard_sizes)


# -- worker-side plumbing -----------------------------------------------------
#
# The pool initializer builds one CompilationEngine per worker process; the
# shard runners look it up through a module global.  Under the ``fork`` start
# method the workload shards themselves are the only data pickled per task.

_WORKER_ENGINE: CompilationEngine | None = None


def _init_worker(engine_options: dict[str, Any]) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = CompilationEngine(**engine_options)


def _worker_engine() -> CompilationEngine:
    if _WORKER_ENGINE is None:  # pragma: no cover - initializer always ran
        raise CompilationError("parallel worker used before initialization")
    return _WORKER_ENGINE


def _stats_snapshot(engine: CompilationEngine) -> dict[str, CacheStats]:
    return {name: stats.copy() for name, stats in engine.stats.items()}


def _reset_stats(engine: CompilationEngine) -> None:
    """Zero the counters (keeping the caches) so a shard reports its own work.

    One pool process may execute several shards; without the reset, a later
    shard's snapshot would re-count the earlier shards' hits and misses and
    the merged report would no longer be the exact sum over the workload.
    """
    for stats in engine.stats.values():
        stats.hits = stats.misses = 0


def _run_probability_shard(payload: tuple[Shard, str]) -> ShardOutcome:
    shard, method = payload
    engine = _worker_engine()
    _reset_stats(engine)
    results = [(index, engine.probability(query, tid, method)) for index, (query, tid) in shard]
    return results, _stats_snapshot(engine)


def _run_compile_shard(payload: tuple[Shard, bool]) -> ShardOutcome:
    shard, use_path_decomposition = payload
    engine = _worker_engine()
    _reset_stats(engine)
    results = [
        (index, engine.compile(query, instance, use_path_decomposition))
        for index, (query, instance) in shard
    ]
    return results, _stats_snapshot(engine)


class ParallelEngine:
    """Shard ``(query, instance)`` workloads across engine-owning workers.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the host's available parallelism.
        ``workers=1`` executes inline (no subprocess).
    engine_options:
        Keyword arguments forwarded to each worker's
        :class:`CompilationEngine` (cache bounds).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it (cheap on Linux), else the platform default.
    """

    def __init__(
        self,
        workers: int | None = None,
        engine_options: Mapping[str, Any] | None = None,
        start_method: str | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise CompilationError("workers must be at least 1")
        self.workers = workers if workers is not None else available_workers()
        self.engine_options = dict(engine_options or {})
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.last_report: ParallelReport | None = None
        self._pool: Pool | None = None
        self._inline_engine: CompilationEngine | None = None

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool (and the inline engine's caches).

        The pool is created lazily on first use and kept alive across calls
        so worker-side engine caches persist between workloads; ``close()``
        (or use as a context manager) tears it down.  A garbage-collected
        unclosed pool is reclaimed by ``multiprocessing``'s own finalizer.
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._inline_engine = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- generic sharded execution -------------------------------------------

    def _run(
        self, items: Sequence[tuple], runner: ShardRunner, extra: Any
    ) -> ParallelReport:
        if not items:
            report = ParallelReport(
                values=(), workers=self.workers, shard_sizes=(), worker_stats=()
            )
            self.last_report = report
            return report
        shards = shard_workload(items, self.workers)
        if self.workers == 1 or len(shards) == 1:
            report = self._run_inline(shards, runner, extra)
        else:
            report = self._run_pool(shards, runner, extra)
        self.last_report = report
        return report

    def _run_inline(
        self, shards: list[Shard], runner: ShardRunner, extra: Any
    ) -> ParallelReport:
        global _WORKER_ENGINE
        if self._inline_engine is None:
            self._inline_engine = CompilationEngine(**self.engine_options)
        previous = _WORKER_ENGINE
        _WORKER_ENGINE = self._inline_engine
        try:
            outcomes = [runner((shard, extra)) for shard in shards]
        finally:
            _WORKER_ENGINE = previous
        return self._merge(shards, outcomes)

    def _run_pool(
        self, shards: list[Shard], runner: ShardRunner, extra: Any
    ) -> ParallelReport:
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self.engine_options,),
            )
        outcomes = self._pool.map(runner, [(shard, extra) for shard in shards])
        return self._merge(shards, outcomes)

    def _merge(
        self, shards: list[Shard], outcomes: list[ShardOutcome]
    ) -> ParallelReport:
        total = sum(len(shard) for shard in shards)
        values: list[Any] = [None] * total
        worker_stats: list[dict[str, CacheStats]] = []
        for results, stats in outcomes:
            for index, value in results:
                values[index] = value
            worker_stats.append(stats)
        return ParallelReport(
            values=tuple(values),
            workers=self.workers,
            shard_sizes=tuple(len(shard) for shard in shards),
            worker_stats=tuple(worker_stats),
        )

    # -- probability workloads ------------------------------------------------

    def map_probability(
        self, pairs: Sequence[ProbabilityItem], method: str = "auto"
    ) -> ParallelReport:
        """Evaluate a workload of ``(query, tid)`` pairs; full report."""
        return self._run(pairs, _run_probability_shard, method)

    def probability_many(
        self,
        queries: Sequence[Query],
        tid: ProbabilisticInstance,
        method: str = "auto",
    ) -> list[Fraction | float]:
        """Probabilities of a batch of queries on one TID instance.

        Mirrors :meth:`CompilationEngine.probability_many`; the detailed
        :class:`ParallelReport` (shard sizes, per-worker cache statistics) is
        kept in :attr:`last_report`.
        """
        report = self.map_probability([(query, tid) for query in queries], method)
        return list(report.values)

    # -- compilation workloads -------------------------------------------------

    def map_compile(
        self, pairs: Sequence[CompileItem], use_path_decomposition: bool = False
    ) -> ParallelReport:
        """Compile a workload of ``(query, instance)`` pairs; full report."""
        return self._run(pairs, _run_compile_shard, bool(use_path_decomposition))

    def compile_many(
        self,
        queries: Sequence[Query],
        instance: Instance,
        use_path_decomposition: bool = False,
    ) -> list[CompiledOBDD]:
        """OBDD compilations of a batch of queries against one instance."""
        report = self.map_compile(
            [(query, instance) for query in queries], use_path_decomposition
        )
        return list(report.values)
