"""Deadline/budget-aware execution and graceful degradation for the engine.

This is the engine-level half of the resilience subsystem.  The kernel-facing
primitives — :class:`~repro.resilience.Deadline`,
:class:`~repro.resilience.ResourceBudget`, the ambient activation — live in
the leaf module :mod:`repro.resilience` (so the OBDD/columnar/lifted kernels
can import them without importing this package) and are re-exported here;
this module adds what only the engine needs:

* :data:`FAILOVER_ORDER` — the ordered feasibility chain ``method="auto"``
  falls through when a route blows its budget or fails for a route-specific
  reason (``safe_plan → columnar → obdd → dnnf → automaton``);
* :class:`ProbabilityBounds` — the *labelled* result of the opt-in
  ``karp_luby`` degradation tier.  The exactness contract: an exact method
  either returns an exact :class:`~fractions.Fraction` or raises a typed
  error; when every exact route is exhausted and the engine was constructed
  with ``degradation="karp_luby"``, the caller receives this explicit
  bounds object — guaranteed dissociation interval plus a seeded Karp–Luby
  point estimate — never a bare float masquerading as exact;
* :func:`degraded_probability_bounds` — the one-call degradation evaluator
  behind that tier.

Failure accounting lives in :class:`repro.engine.router.RouteCostModel`:
each failed attempt is recorded as a *penalty* (a separate multiplier on
the route's prediction), not as a fake observation, so blowouts steer the
router away from a route without poisoning the EWMA rate that successful
runs continue to sharpen.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.data.tid import ProbabilisticInstance
from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    ExecutionAborted,
    SegmentError,
    WorkerCrashError,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.resilience import (
    CHECK_INTERVAL,
    Deadline,
    ResourceBudget,
    activate,
    active_budget,
)

#: The ordered feasibility chain of ``method="auto"``: when the chosen route
#: fails (budget blowout or route-specific error), the engine advances to
#: the next feasible route in this order; the opt-in ``karp_luby``
#: degradation tier sits after the last exact route.
FAILOVER_ORDER: tuple[str, ...] = ("safe_plan", "columnar", "obdd", "dnnf", "automaton")

#: The name under which the degradation tier is recorded in the route mix
#: and on :class:`~repro.engine.router.RouteDecision`.
DEGRADED_ROUTE = "karp_luby"


@dataclass(frozen=True, slots=True)
class ProbabilityBounds:
    """A labelled approximate answer: guaranteed interval plus point estimate.

    ``lower``/``upper`` are the exact dissociation bounds (theorems — the
    true probability always lies inside); ``estimate`` is the seeded
    Karp–Luby point estimate with its sampling effort.  Returned *only* by
    the opt-in degradation tier, so a caller can never mistake it for an
    exact :class:`~fractions.Fraction`.
    """

    lower: Fraction
    upper: Fraction
    estimate: float
    samples: int
    method: str = DEGRADED_ROUTE

    def contains(self, value: Fraction | float) -> bool:
        """Whether ``value`` lies in the guaranteed interval."""
        if isinstance(value, float):
            return float(self.lower) - 1e-12 <= value <= float(self.upper) + 1e-12
        return self.lower <= value <= self.upper

    @property
    def gap(self) -> Fraction:
        return self.upper - self.lower

    def __float__(self) -> float:
        return float(self.estimate)


def degraded_probability_bounds(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    tid: ProbabilisticInstance,
    samples: int = 2000,
    seed: int = 0,
) -> ProbabilityBounds:
    """The ``karp_luby`` degradation tier: bounds, never a silent approximation.

    One DNF lineage (polynomial in the instance even when the compiled
    circuits explode) feeds both the guaranteed dissociation interval and
    the Karp–Luby estimator; the estimate is clamped into the interval so
    the three numbers are always mutually consistent.
    """
    from repro.probability.approximation import karp_luby_with_bounds

    estimate, bounds = karp_luby_with_bounds(query, tid, samples=samples, seed=seed)
    point = min(max(estimate.estimate, float(bounds.lower)), float(bounds.upper))
    return ProbabilityBounds(
        lower=bounds.lower,
        upper=bounds.upper,
        estimate=point,
        samples=estimate.samples,
    )


__all__ = [
    "CHECK_INTERVAL",
    "DEGRADED_ROUTE",
    "FAILOVER_ORDER",
    "BudgetExceeded",
    "Deadline",
    "DeadlineExceeded",
    "ExecutionAborted",
    "ProbabilityBounds",
    "ResourceBudget",
    "SegmentError",
    "WorkerCrashError",
    "activate",
    "active_budget",
    "degraded_probability_bounds",
]
