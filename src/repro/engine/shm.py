"""Zero-copy artifact shipping over ``multiprocessing.shared_memory``.

A :class:`SegmentPlane` owns a family of shared-memory segments, all named
under one per-plane prefix.  Compiled columnar artifacts
(:class:`repro.booleans.columnar.ColumnarOBDD`) are *published* into a
segment (one contiguous ``var|lo|hi`` buffer) and *attached* elsewhere as
numpy views straight into the mapping — no pickling of node graphs, no
per-node object materialization on the far side.

Lifecycle contract (the satellite tests pin it):

* the plane that calls :meth:`publish` — or that adopts a worker-created
  segment via :meth:`adopt` — owns the segment and is responsible for the
  single ``unlink``;
* :meth:`close` closes every mapping, unlinks every owned segment, and then
  sweeps ``/dev/shm`` for orphans under the plane's prefix — segments left
  behind by a worker that crashed between ``shm_open`` and handing the name
  back are reclaimed too;
* creators and attachers are both detached from CPython's
  ``resource_tracker``: under the ``spawn`` start method each worker has its
  *own* tracker, which would otherwise unlink segments at worker exit while
  the parent still maps them, and (before 3.13) every attach spuriously
  re-registers the name.  Explicit ownership plus the prefix sweep replaces
  the tracker.

Segments are a transport for *flat columns only*; the small picklable
sidecar (:class:`SegmentHandle`: name, node count, root, variable order)
still crosses the process boundary by value.
"""

from __future__ import annotations

import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Hashable, Iterable, Iterator

from repro.booleans.columnar import ColumnarOBDD, columnar_from_buffer
from repro.errors import CompilationError, SegmentError

_DEV_SHM = "/dev/shm"


def _untrack(name: str) -> None:
    """Detach a segment from the resource tracker (ownership is explicit)."""
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    # repro-analysis: allow(EXCEPT001): the tracker API differs across platforms and Python versions; failing to unregister only risks a spurious unlink at exit, never correctness
    except Exception:  # pragma: no cover - tracker variations across platforms
        pass


@dataclass(frozen=True, slots=True)
class SegmentHandle:
    """The picklable sidecar describing one published columnar artifact."""

    name: str | None  # None: terminal-only artifact, no segment was created
    node_count: int
    root: int
    order: tuple[Hashable, ...]

    @property
    def nbytes(self) -> int:
        return 3 * self.node_count * 8


def publish_segment(columnar: ColumnarOBDD, name: str) -> SegmentHandle:
    """Create segment ``name`` holding the artifact's packed columns.

    The creating process keeps no mapping open afterwards; the caller (or an
    adopting plane) owns the unlink.  Terminal-only artifacts (zero decision
    nodes) need no segment at all and return a handle with ``name=None``.
    """
    if len(columnar) == 0:
        return SegmentHandle(None, 0, columnar.root, columnar.order)
    segment = shared_memory.SharedMemory(create=True, name=name, size=columnar.nbytes)
    try:
        columnar.write_into(segment.buf)
    finally:
        _untrack(segment.name)
        segment.close()
    return SegmentHandle(name, len(columnar), columnar.root, columnar.order)


def attach_segment(handle: SegmentHandle) -> ColumnarOBDD:
    """Attach to a published artifact; columns are views into the mapping.

    The returned artifact retains the mapping, so it stays valid while the
    artifact is referenced — but an ``unlink`` (plane close) invalidates it;
    call :meth:`ColumnarOBDD.copy` first to keep a private copy.

    An absent segment (publisher crashed before the write, or the plane
    already swept it) and a corrupt buffer (rejected by the columnar
    topology check) both raise the typed
    :class:`~repro.errors.SegmentError`, which the parallel tier treats as
    retryable: the parent republishes and re-submits the affected shard.
    """
    if handle.name is None:
        return ColumnarOBDD(handle.order, [], [], [], handle.root)
    try:
        segment = shared_memory.SharedMemory(name=handle.name)
    except FileNotFoundError as error:
        raise SegmentError(
            f"shared-memory segment {handle.name!r} is absent"
            " (crashed publisher or swept plane)"
        ) from error
    _untrack(handle.name)
    if segment.size < handle.nbytes:
        segment.close()
        raise SegmentError(
            f"shared-memory segment {handle.name!r} is truncated:"
            f" {segment.size} bytes < {handle.nbytes} expected"
        )
    try:
        artifact = columnar_from_buffer(
            {"node_count": handle.node_count, "root": handle.root, "order": handle.order},
            segment.buf,
            retain=segment,
        )
    except CompilationError as error:
        # The failed validation may have exported views into the mapping (the
        # exception traceback keeps them alive), so a plain close can raise
        # BufferError; the tolerant close leaves the mapping for process exit.
        _close_ignoring_exports(segment)
        raise SegmentError(
            f"shared-memory segment {handle.name!r} holds a corrupt columnar"
            f" buffer: {error}"
        ) from error
    if artifact._retain is None:
        # Fallback backend: the columns were copied out, the mapping is done.
        segment.close()
    return artifact


class SegmentPlane:
    """Owner of a prefix-named family of shared-memory segments.

    One plane lives in the parent :class:`~repro.engine.parallel.
    ParallelEngine`; workers derive segment names from the plane's prefix
    (:meth:`worker_name`) so the parent can both adopt the handles they
    return and sweep orphans after a crash.

    The effective prefix is ``{base}-{session_id}``: a fresh random session
    id per plane scopes the crash-orphan sweep to this plane's own segments,
    so two concurrent engines on one host — even ones constructed with the
    same base ``prefix`` — cannot reclaim each other's live segments.
    """

    def __init__(self, prefix: str | None = None, session_id: str | None = None) -> None:
        base = prefix if prefix is not None else f"repro-{os.getpid()}"
        if session_id is None:
            session_id = secrets.token_hex(4)
        if "/" in base or "/" in session_id:
            raise CompilationError("segment prefix must not contain '/'")
        self.base_prefix = base
        self.session_id = session_id
        # Every name this plane creates — and everything its orphan sweep
        # reclaims — lives under the *session-scoped* prefix.  Two planes
        # sharing a base prefix (two engines in one process, or two processes
        # handed the same explicit prefix) therefore can never sweep each
        # other's live segments: the session id keeps their namespaces
        # disjoint.
        self.prefix = f"{base}-{session_id}"
        self._serial = 0
        # name -> open SharedMemory mapping (attached artifacts keep their
        # own reference too; this registry is for close/unlink).
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        self._owned: set[str] = set()
        # Safety net for planes that are garbage-collected (or alive at
        # interpreter exit) without an explicit close(): the finalizer sees
        # the same mutable registries, so whatever close() already reclaimed
        # is skipped and whatever it missed is unlinked.  Explicit close()
        # remains the contract; this only prevents /dev/shm litter.
        self._finalizer = weakref.finalize(
            self, _reclaim_segments, self.prefix, self._owned, self._attached
        )

    # -- naming ----------------------------------------------------------------

    def next_name(self) -> str:
        self._serial += 1
        return f"{self.prefix}-p{self._serial}"

    def worker_name(self, worker_pid: int, serial: int) -> str:
        return f"{self.prefix}-w{worker_pid}-{serial}"

    # -- publish / attach ------------------------------------------------------

    def publish(self, columnar: ColumnarOBDD) -> SegmentHandle:
        """Publish an artifact under a fresh plane-owned name."""
        handle = publish_segment(columnar, self.next_name())
        if handle.name is not None:
            self._owned.add(handle.name)
        return handle

    def adopt(self, handle: SegmentHandle) -> ColumnarOBDD:
        """Attach to a worker-published segment and take ownership of it."""
        artifact = attach_segment(handle)
        if handle.name is not None:
            self._owned.add(handle.name)
            if artifact._retain is not None:
                self._attached[handle.name] = artifact._retain
        return artifact

    # -- lifecycle -------------------------------------------------------------

    def owned_segments(self) -> tuple[str, ...]:
        return tuple(sorted(self._owned))

    def sweep_worker_orphans(self, worker_pid: int, keep: Iterable[str] = ()) -> list[str]:
        """Reclaim segments a crashed worker left behind, surgically.

        Only names under this worker's sub-prefix (``{prefix}-w{pid}-``) are
        touched, so live segments published by other workers survive; names
        in ``keep`` (handles already merged into completed outcomes) and
        names the plane owns (adopted earlier) survive too.  Returns the
        unlinked names.
        """
        kept = set(keep) | self._owned
        swept = []
        for name in orphan_segments(f"{self.prefix}-w{worker_pid}-"):
            if name in kept:
                continue
            _unlink_quietly(name)
            swept.append(name)
        return swept

    def close(self) -> None:
        """Close every mapping, unlink every owned segment, sweep orphans."""
        _reclaim_segments(self.prefix, self._owned, self._attached)

    def __enter__(self) -> "SegmentPlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _reclaim_segments(
    prefix: str,
    owned: set[str],
    attached: dict[str, shared_memory.SharedMemory],
) -> None:
    """Close mappings, unlink owned segments, sweep prefix orphans.

    Shared by :meth:`SegmentPlane.close` and the plane's GC finalizer; takes
    the mutable registries (not the plane) so the finalizer keeps nothing
    alive and both paths observe whatever the other already reclaimed.
    """
    for name, segment in list(attached.items()):
        _close_ignoring_exports(segment)
        del attached[name]
    for name in sorted(owned):
        _unlink_quietly(name)
    owned.clear()
    for name in orphan_segments(prefix):
        _unlink_quietly(name)


def _close_ignoring_exports(segment: shared_memory.SharedMemory) -> None:
    """Close a mapping, tolerating still-exported numpy views.

    An adopted artifact that outlives its plane keeps views into the mapping;
    ``mmap.close`` then raises ``BufferError``.  The mapping is left in place
    (the OS reclaims it at process exit — the *segment* is already unlinked)
    and the object's ``close`` is stubbed out so its destructor does not
    re-raise the same error as interpreter-teardown noise.
    """
    try:
        segment.close()
    except BufferError:
        segment.close = lambda: None  # type: ignore[method-assign]


def _unlink_quietly(name: str) -> None:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    segment.close()
    try:
        # unlink() also unregisters the name from the resource tracker,
        # balancing the registration the attach above made — no _untrack
        # here, or the tracker would see the name unregistered twice.
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - raced with another unlink
        pass


def orphan_segments(prefix: str) -> Iterator[str]:
    """Names under ``prefix`` still present in ``/dev/shm`` (Linux only)."""
    if not os.path.isdir(_DEV_SHM):  # pragma: no cover - non-Linux
        return
    for entry in sorted(os.listdir(_DEV_SHM)):
        if entry.startswith(prefix):
            yield entry


def live_segments(prefix: str) -> list[str]:
    """Snapshot of ``/dev/shm`` entries under a prefix (test helper)."""
    return list(orphan_segments(prefix))
