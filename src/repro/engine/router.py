"""Dichotomy router support: route decisions and measured cost models.

The paper's two tractability routes — query-based lifted inference and
instance-based circuit compilation — meet in
:meth:`repro.engine.CompilationEngine.choose_route`: given a query and a
TID instance, pick the evaluation method for ``method="auto"``.  This
module holds the passive data behind that choice:

* :class:`RouteDecision` — the chosen method plus everything that went
  into it (liftability, instance size, per-route cost estimates, which
  routes were gated infeasible, a human-readable reason), recorded so the
  CLI and tests can explain routing;
* :class:`RouteCostModel` — per-route cost rates in seconds per fact,
  seeded with static priors and updated from measured evaluations
  (exponentially weighted moving average), so a session learns the actual
  relative costs of its routes on its own workload.

Cost estimates are deliberately ``float`` seconds: they steer which exact
route runs, they never enter a probability computation.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The circuit-building routes the router arbitrates against the lifted
#: plan: all exact, all requiring lineage enumeration over the instance.
CIRCUIT_ROUTES: tuple[str, ...] = ("obdd", "columnar", "dnnf", "automaton")

#: Tie-break preference when estimates are equal (cheapest artifact first).
ROUTE_PREFERENCE: dict[str, int] = {
    "safe_plan": 0,
    "obdd": 1,
    "columnar": 2,
    "dnnf": 3,
    "automaton": 4,
}

#: Prior cost rates in seconds per fact, from the benchmark suite's orders
#: of magnitude: a lifted plan streams the hash indexes once; the circuit
#: routes enumerate lineage matches and build node graphs on top.
DEFAULT_COST_PRIORS: dict[str, float] = {
    "safe_plan": 5e-6,
    "obdd": 2e-4,
    "columnar": 2e-4,
    "dnnf": 3e-4,
    "automaton": 5e-4,
}


@dataclass(frozen=True, slots=True)
class RouteAttempt:
    """One try in a ``method="auto"`` failover chain.

    ``error`` is empty on success, else a one-line description of the
    typed failure (budget blowout, deadline, route-specific error) that
    pushed the engine to the next route.
    """

    route: str
    error: str
    seconds: float

    @property
    def succeeded(self) -> bool:
        return not self.error


@dataclass(frozen=True, slots=True)
class RouteDecision:
    """One ``method="auto"`` routing decision, with its evidence.

    ``estimates`` holds ``(route, predicted_seconds)`` for every feasible
    route (in preference order); ``infeasible`` names the routes gated out
    by the circuit fact limit.  ``method`` is always one of the estimate
    routes when any route is feasible, else the best-effort fallback.

    After an evaluation, ``attempts`` records the failover chain actually
    walked (the engine re-publishes the decision with them filled in);
    ``degraded`` marks answers served by the opt-in ``karp_luby``
    degradation tier after every exact route failed.
    """

    method: str
    liftable: bool
    instance_facts: int
    estimates: tuple[tuple[str, float], ...]
    infeasible: tuple[str, ...]
    reason: str
    attempts: tuple[RouteAttempt, ...] = ()
    degraded: bool = False


class RouteCostModel:
    """EWMA per-route cost rates (seconds per fact).

    ``observe`` folds a measured evaluation into the route's rate;
    ``predict`` extrapolates to an instance size.  Rates start at the
    static priors, so the router is usable from the first call and simply
    gets sharper as the session measures its own workload.

    Failed attempts (budget blowouts, route-specific errors) are recorded
    by :meth:`record_failure` as a *penalty* — a separate multiplier of
    ``2**failures`` (capped) on the route's prediction — never as a fake
    timing observation, so blowouts steer the router away from a route
    without poisoning the EWMA rate that successful runs keep sharpening.
    Each subsequent success halves the penalty back down.
    """

    #: Cap on the failure-penalty exponent: at most a ``2**6 = 64``-fold
    #: prediction inflation, so a recovered route can win again after a
    #: handful of successes elsewhere rather than being exiled forever.
    MAX_FAILURE_PENALTY_EXPONENT = 6

    def __init__(
        self,
        priors: dict[str, float] | None = None,
        smoothing: float = 0.3,
    ) -> None:
        self._rates: dict[str, float] = dict(
            DEFAULT_COST_PRIORS if priors is None else priors
        )
        self._smoothing = smoothing
        self._failures: dict[str, int] = {}

    def observe(self, route: str, facts: int, seconds: float) -> None:
        """Fold one measured evaluation into the route's rate."""
        if seconds < 0.0:
            return
        rate = seconds / max(facts, 1)
        previous = self._rates.get(route)
        if previous is None:
            self._rates[route] = rate
        else:
            self._rates[route] = (
                previous + self._smoothing * (rate - previous)
            )
        failures = self._failures.get(route, 0)
        if failures:
            # A success is evidence the route recovered: decay the penalty.
            if failures > 1:
                self._failures[route] = failures // 2
            else:
                del self._failures[route]

    def record_failure(self, route: str) -> None:
        """Record one failed attempt (blowout or error) on a route."""
        self._failures[route] = self._failures.get(route, 0) + 1

    def failure_count(self, route: str) -> int:
        """Current (decayed) failure count for a route."""
        return self._failures.get(route, 0)

    def failure_counts(self) -> dict[str, int]:
        """A copy of every route's current failure count."""
        return dict(self._failures)

    def predict(self, route: str, facts: int) -> float:
        """Predicted evaluation cost in seconds at ``facts`` facts.

        Routes with recorded failures are penalized by ``2**failures``
        (exponent capped) on top of the measured rate.
        """
        rate = self._rates.get(route, max(DEFAULT_COST_PRIORS.values()))
        exponent = min(
            self._failures.get(route, 0), self.MAX_FAILURE_PENALTY_EXPONENT
        )
        return rate * max(facts, 1) * (1 << exponent)

    def rate(self, route: str) -> float | None:
        """The current rate for a route (None when never seen)."""
        return self._rates.get(route)

    def snapshot(self) -> dict[str, float]:
        """A copy of every route's current rate."""
        return dict(self._rates)
