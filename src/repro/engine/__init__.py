"""repro.engine — an indexed, cached compilation engine for lineage workloads.

This package is the session layer of the library: where the one-shot helpers
(:func:`repro.provenance.lineage.lineage_of`,
:func:`repro.provenance.compile_obdd.compile_query_to_obdd`,
:func:`repro.probability.evaluation.probability`) recompute every structural
artifact on each call, a :class:`CompilationEngine` memoizes them across calls
and serves batched workloads.

Caching keys
------------
Every cache is keyed on *content fingerprints*, never on object identity:

* per-instance structural artifacts (Gaifman graph, tree and path
  decompositions, fact orders) are keyed on
  :attr:`repro.data.instance.Instance.fingerprint` — a SHA-256 digest of the
  signature and the sorted fact list;
* per-(query, instance) lineages and compiled OBDDs are keyed on the
  (hashable) query together with the instance fingerprint and the compilation
  options;
* probability results are keyed on the query, the evaluation method, and
  :attr:`repro.data.tid.ProbabilisticInstance.fingerprint`, which extends the
  instance fingerprint with the probability valuation.

Invalidation
------------
Instances are immutable: every mutation-like operation (``with_facts``,
``subinstance``, ``rename``, ``condition`` ...) builds a new object whose
fingerprint differs, so stale entries are never *served* — they are merely
unreachable, and are eventually dropped by the engine's LRU bound
(``max_instances`` live instances; oldest evicted first).  ``clear()`` resets
everything, including the hit/miss statistics.

Batching
--------
``compile_many(queries, instance)`` and ``probability_many(queries, tid)``
evaluate a whole workload against one instance in a single session, so the
Gaifman graph, decompositions, and fact order are computed once and shared;
repeated queries in the batch are served from cache.  The CLI ``batch``
subcommand, the examples, and ``benchmarks/bench_engine.py`` all go through
these entry points.

Dichotomy routing
-----------------
``probability(..., method="auto")`` consults the dichotomy router
(:meth:`CompilationEngine.choose_route`): if the query admits a lifted plan
(cached, instance-independent — :meth:`CompilationEngine.lifted_plan`), the
safe-plan route competes on measured cost with the circuit routes (OBDD,
columnar, d-DNNF, automaton); past ``circuit_fact_limit`` facts the circuit
routes are gated infeasible (unless already compiled) and safe queries run
on the lifted plan alone.  Chosen routes are counted in
:meth:`CompilationEngine.route_mix` and surfaced by the CLI.

Parallelism
-----------
:class:`repro.engine.parallel.ParallelEngine` scales the same batched entry
points past one core: ``(query, instance)`` workloads are partitioned into
shards (grouped by instance fingerprint for cache affinity, split when a
single instance dominates), each shard runs in a ``multiprocessing`` worker
owning a private :class:`CompilationEngine`, and the values plus per-worker
``CacheStats`` are merged back into one :class:`ParallelReport`.  The CLI
``batch --workers N`` flag and ``benchmarks/bench_parallel.py`` go through
it.

Data plane
----------
Compiled artifacts cross the process boundary as flat columnar buffers in
``multiprocessing.shared_memory`` segments (:mod:`repro.engine.shm`): a
:class:`~repro.engine.shm.SegmentPlane` owns the segments' lifecycle
(create/attach/close/unlink, plus a prefix sweep of ``/dev/shm`` that
reclaims segments orphaned by crashed workers), and only the tiny
:class:`~repro.engine.shm.SegmentHandle` sidecars are pickled.

Resilience
----------
:mod:`repro.engine.resilience` adds deadline/budget-aware execution:
a :class:`~repro.resilience.ResourceBudget` (node/row caps plus a
wall-clock :class:`~repro.resilience.Deadline`) threads through
``probability(..., budget=...)`` into the kernels' cooperative
checkpoints; ``method="auto"`` fails over along
:data:`~repro.engine.resilience.FAILOVER_ORDER` on blowouts, recording
failures as cost-model penalties; an engine constructed with
``degradation="karp_luby"`` returns labelled
:class:`~repro.engine.resilience.ProbabilityBounds` when every exact
route fails.  :class:`ParallelEngine` detects crashed workers, respawns
them, and retries only the affected shards.
"""

from repro.engine.parallel import (
    ParallelEngine,
    ParallelReport,
    available_workers,
    shard_workload,
)
from repro.engine.resilience import (
    DEGRADED_ROUTE,
    FAILOVER_ORDER,
    Deadline,
    ProbabilityBounds,
    ResourceBudget,
    degraded_probability_bounds,
)
from repro.engine.router import (
    CIRCUIT_ROUTES,
    DEFAULT_COST_PRIORS,
    ROUTE_PREFERENCE,
    RouteAttempt,
    RouteCostModel,
    RouteDecision,
)
from repro.engine.session import (
    CacheStats,
    CompilationEngine,
    default_engine,
    merge_cache_stats,
)
from repro.engine.shm import SegmentHandle, SegmentPlane, attach_segment, publish_segment

__all__ = [
    "CIRCUIT_ROUTES",
    "CacheStats",
    "CompilationEngine",
    "DEFAULT_COST_PRIORS",
    "DEGRADED_ROUTE",
    "Deadline",
    "FAILOVER_ORDER",
    "ParallelEngine",
    "ParallelReport",
    "ProbabilityBounds",
    "ROUTE_PREFERENCE",
    "ResourceBudget",
    "RouteAttempt",
    "RouteCostModel",
    "RouteDecision",
    "SegmentHandle",
    "SegmentPlane",
    "attach_segment",
    "available_workers",
    "default_engine",
    "degraded_probability_bounds",
    "merge_cache_stats",
    "publish_segment",
    "shard_workload",
]
