"""Path decompositions and pathwidth (Section 2 of the paper).

A path decomposition is a tree decomposition whose tree is a path.  The
pathwidth of a graph is the minimum width of a path decomposition.  Constant-
width OBDDs on bounded-pathwidth instances (Theorem 6.7) rely on a variable
order following a path decomposition.

We compute path decompositions with a vertex-separation heuristic (greedy +
local search) and an exact search for small graphs, and can also flatten a
tree decomposition into a path decomposition (width at most (w+1)*depth - 1,
used only as a fallback).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import DecompositionError
from repro.structure.graph import Graph, Vertex
from repro.structure.tree_decomposition import TreeDecomposition


class PathDecomposition:
    """A path decomposition: an ordered list of bags."""

    __slots__ = ("_bags",)

    def __init__(self, bags: Sequence[frozenset]) -> None:
        self._bags: tuple[frozenset, ...] = tuple(frozenset(b) for b in bags)

    @property
    def bags(self) -> tuple[frozenset, ...]:
        return self._bags

    @property
    def width(self) -> int:
        if not self._bags:
            return -1
        return max(len(bag) for bag in self._bags) - 1

    def __len__(self) -> int:
        return len(self._bags)

    def vertex_order(self) -> list:
        """Graph vertices by first appearance along the path (for OBDD orders)."""
        seen: dict[Any, None] = {}
        for bag in self._bags:
            for vertex in sorted(bag, key=_stable_key):
                seen.setdefault(vertex, None)
        return list(seen)

    def validate(self, graph: Graph) -> None:
        covered = set()
        for bag in self._bags:
            covered |= bag
        if set(graph.vertices) - covered:
            raise DecompositionError("path decomposition does not cover all vertices")
        for u, v in graph.edges():
            if not any(u in bag and v in bag for bag in self._bags):
                raise DecompositionError(f"edge ({u!r}, {v!r}) not covered")
        for vertex in graph.vertices:
            indices = [i for i, bag in enumerate(self._bags) if vertex in bag]
            if indices and indices != list(range(indices[0], indices[-1] + 1)):
                raise DecompositionError(f"occurrences of {vertex!r} are not contiguous")

    def to_tree_decomposition(self) -> TreeDecomposition:
        """View the path as a (rooted, left-to-right) tree decomposition."""
        if not self._bags:
            return TreeDecomposition(bags={0: frozenset()}, children={0: []}, root=0)
        bags = {i: bag for i, bag in enumerate(self._bags)}
        children = {i: ([i + 1] if i + 1 < len(self._bags) else []) for i in range(len(self._bags))}
        return TreeDecomposition(bags=bags, children=children, root=0)

    def is_valid_for(self, graph: Graph) -> bool:
        try:
            self.validate(graph)
        except DecompositionError:
            return False
        return True


def path_decomposition_from_order(graph: Graph, order: Sequence[Vertex]) -> PathDecomposition:
    """The path decomposition induced by a linear vertex order.

    Bag ``i`` contains vertex ``order[i]`` together with every earlier vertex
    that still has a neighbor at position >= i (the "active" vertices).  Its
    width is the vertex separation number of the order.
    """
    if set(order) != set(graph.vertices):
        raise DecompositionError("order must contain every vertex exactly once")
    position = {v: i for i, v in enumerate(order)}
    last_needed = {
        v: max([position[v]] + [position[u] for u in graph.neighbors(v)]) for v in order
    }
    bags: list[frozenset] = []
    active: set[Vertex] = set()
    for i, v in enumerate(order):
        active.add(v)
        bags.append(frozenset(active))
        active = {u for u in active if last_needed[u] > i}
    decomposition = PathDecomposition(bags)
    decomposition.validate(graph)
    return decomposition


def greedy_path_order(graph: Graph) -> list[Vertex]:
    """A greedy linear order minimizing the number of active vertices.

    At each step, pick the vertex that minimizes the resulting active-set
    size, breaking ties by number of not-yet-placed neighbors.
    """
    remaining = set(graph.vertices)
    placed: list[Vertex] = []
    active: set[Vertex] = set()
    while remaining:
        def cost(v: Vertex) -> tuple[int, int, tuple]:
            new_active = (active | {v})
            new_active = {
                u
                for u in new_active
                if any(w in remaining and w != v for w in graph.neighbors(u))
            }
            return (len(new_active), len(graph.neighbors(v) & remaining), _stable_key(v))

        best = min(remaining, key=cost)
        placed.append(best)
        remaining.discard(best)
        active.add(best)
        active = {u for u in active if graph.neighbors(u) & remaining}
    return placed


def path_decomposition(graph: Graph, exact: bool = False) -> PathDecomposition:
    """A path decomposition of ``graph`` (heuristic; exact for small graphs)."""
    if len(graph) == 0:
        return PathDecomposition([frozenset()])
    if exact and len(graph) <= 12:
        order = _exact_path_order(graph)
    else:
        order = greedy_path_order(graph)
    return path_decomposition_from_order(graph, order)


def pathwidth(graph: Graph, exact: bool = False) -> int:
    """The pathwidth of ``graph`` (upper bound unless ``exact=True`` and small)."""
    return path_decomposition(graph, exact=exact).width


def _exact_path_order(graph: Graph) -> list[Vertex]:
    """Exact minimum vertex-separation order by DP over vertex subsets."""
    vertices = sorted(graph.vertices, key=_stable_key)
    n = len(vertices)
    index = {v: i for i, v in enumerate(vertices)}
    neighbor_masks = [0] * n
    for v in vertices:
        mask = 0
        for u in graph.neighbors(v):
            mask |= 1 << index[u]
        neighbor_masks[index[v]] = mask

    def boundary_size(placed_mask: int) -> int:
        remaining_mask = ((1 << n) - 1) ^ placed_mask
        count = 0
        for i in range(n):
            if placed_mask >> i & 1 and neighbor_masks[i] & remaining_mask:
                count += 1
        return count

    # DP over subsets: best achievable max boundary when the subset is placed.
    best: dict[int, tuple[int, int]] = {0: (0, -1)}  # mask -> (cost, last vertex)
    for mask in range(1, 1 << n):
        candidates: list[tuple[int, int]] = []
        for i in range(n):
            if mask >> i & 1:
                prev = mask ^ (1 << i)
                if prev in best:
                    cost = max(best[prev][0], boundary_size(prev | (1 << i)))
                    candidates.append((cost, i))
        if candidates:
            best[mask] = min(candidates)
    order_indices: list[int] = []
    mask = (1 << n) - 1
    while mask:
        _, last = best[mask]
        order_indices.append(last)
        mask ^= 1 << last
    order_indices.reverse()
    return [vertices[i] for i in order_indices]


def path_decomposition_from_tree(decomposition: TreeDecomposition) -> PathDecomposition:
    """Flatten a tree decomposition into a path decomposition.

    Bags are taken in pre-order; to preserve the connectedness condition, each
    bag is augmented with the vertices of all bags on the tree path between it
    and previously visited bags that reappear later.  The width can grow; this
    is a fallback for callers that insist on a path shape.
    """
    order = decomposition.topological_order()
    bags = [decomposition.bags[node] for node in order]
    # Fix contiguity: for each vertex, fill the gap between its first and last occurrence.
    first: dict[Any, int] = {}
    last: dict[Any, int] = {}
    for i, bag in enumerate(bags):
        for vertex in bag:
            first.setdefault(vertex, i)
            last[vertex] = i
    fixed = []
    for i, bag in enumerate(bags):
        extra = {v for v in first if first[v] <= i <= last[v]}
        fixed.append(frozenset(bag | extra))
    return PathDecomposition(fixed)


def _stable_key(vertex: Any) -> tuple[str, str]:
    return (type(vertex).__name__, repr(vertex))
