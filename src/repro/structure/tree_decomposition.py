"""Tree decompositions and treewidth (Section 2 of the paper).

A tree decomposition of a graph is a tree of *bags* (sets of vertices) such
that (i) every edge is covered by some bag and (ii) the bags containing any
given vertex form a connected subtree.  Its width is the maximum bag size
minus one, and the treewidth of the graph is the minimum width over all
decompositions.

We build decompositions from elimination orderings (heuristic or exact) and
validate them explicitly.  Decompositions are rooted trees stored as a parent
map; they also expose traversals used by the lineage constructions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, Sequence

from repro.errors import DecompositionError
from repro.structure.elimination import (
    EliminationSweep,
    best_heuristic_ordering_with_width,
    best_heuristic_sweep,
    exact_ordering,
    ordering_width,
)
from repro.structure.graph import Graph, Vertex

BagId = int


@dataclass
class TreeDecomposition:
    """A rooted tree decomposition.

    Attributes
    ----------
    bags:
        Mapping from bag id to the frozenset of graph vertices in the bag.
    children:
        Mapping from bag id to the list of its children bag ids.
    root:
        The id of the root bag.
    """

    bags: dict[BagId, frozenset]
    children: dict[BagId, list[BagId]]
    root: BagId
    parent: dict[BagId, BagId | None] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.parent:
            self.parent = {self.root: None}
            for node, kids in self.children.items():
                for kid in kids:
                    self.parent[kid] = node
        for node in self.bags:
            self.children.setdefault(node, [])

    # -- basic accessors -----------------------------------------------------

    @property
    def width(self) -> int:
        """max bag size - 1 (width -1 for the empty decomposition)."""
        if not self.bags:
            return -1
        return max(len(bag) for bag in self.bags.values()) - 1

    def __len__(self) -> int:
        return len(self.bags)

    def nodes(self) -> tuple[BagId, ...]:
        return tuple(self.bags)

    def bag(self, node: BagId) -> frozenset:
        return self.bags[node]

    def is_leaf(self, node: BagId) -> bool:
        return not self.children.get(node)

    # -- traversals ----------------------------------------------------------

    def topological_order(self) -> list[BagId]:
        """Root-first (pre-order) traversal."""
        order: list[BagId] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self.children.get(node, [])))
        return order

    def post_order(self) -> list[BagId]:
        """Children-before-parent traversal."""
        order: list[BagId] = []
        stack: list[tuple[BagId, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
            else:
                stack.append((node, True))
                for kid in reversed(self.children.get(node, [])):
                    stack.append((kid, False))
        return order

    def dfs_vertex_order(self) -> list:
        """Graph vertices in order of first appearance along a pre-order walk.

        This order is used to derive OBDD variable orders (Section 6)."""
        seen: dict[Any, None] = {}
        for node in self.topological_order():
            for vertex in sorted(self.bags[node], key=_stable_key):
                seen.setdefault(vertex, None)
        return list(seen)

    # -- validation ----------------------------------------------------------

    def is_valid_for(self, graph: Graph) -> bool:
        try:
            self.validate(graph)
        except DecompositionError:
            return False
        return True

    def validate(self, graph: Graph) -> None:
        """Raise :class:`DecompositionError` unless this is a valid decomposition."""
        all_bag_vertices = set()
        for bag in self.bags.values():
            all_bag_vertices |= bag
        missing = set(graph.vertices) - all_bag_vertices
        if missing:
            raise DecompositionError(f"vertices not covered by any bag: {sorted(map(repr, missing))[:5]}")
        # Tree structure.
        if self.root not in self.bags:
            raise DecompositionError("root is not a bag")
        reachable = set(self.topological_order())
        if reachable != set(self.bags):
            raise DecompositionError("decomposition tree is not connected")
        # Edge coverage.
        for u, v in graph.edges():
            if not any(u in bag and v in bag for bag in self.bags.values()):
                raise DecompositionError(f"edge ({u!r}, {v!r}) not covered by any bag")
        # Connectedness of occurrences.
        for vertex in graph.vertices:
            occurrences = [node for node, bag in self.bags.items() if vertex in bag]
            if not occurrences:
                raise DecompositionError(f"vertex {vertex!r} in no bag")
            if not self._occurrences_connected(set(occurrences)):
                raise DecompositionError(f"occurrences of {vertex!r} are not connected")

    def _occurrences_connected(self, occurrences: set[BagId]) -> bool:
        start = next(iter(occurrences))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            neighbors = list(self.children.get(node, []))
            if self.parent.get(node) is not None:
                neighbors.append(self.parent[node])
            for other in neighbors:
                if other in occurrences and other not in seen:
                    seen.add(other)
                    stack.append(other)
        return seen == occurrences

    # -- transformations ------------------------------------------------------

    def relabel(self) -> "TreeDecomposition":
        """Renumber bag ids consecutively in topological order."""
        order = self.topological_order()
        new_id = {node: i for i, node in enumerate(order)}
        bags = {new_id[node]: self.bags[node] for node in order}
        children = {new_id[node]: [new_id[kid] for kid in self.children.get(node, [])] for node in order}
        return TreeDecomposition(bags=bags, children=children, root=new_id[self.root])

    def is_path_decomposition(self) -> bool:
        """True if every bag has at most one child (the tree is a path)."""
        return all(len(kids) <= 1 for kids in self.children.values())


def decomposition_from_sweep(sweep: EliminationSweep) -> TreeDecomposition:
    """Build a tree decomposition directly from an elimination sweep.

    The sweep already carries each vertex's bag (closed neighborhood at
    elimination time), so no elimination replay and no validation pass are
    needed: the construction is correct by construction.  Bag ids follow the
    elimination order; the last vertex's bag is the root, and the parent of
    the bag of ``v`` is the bag of the earliest-eliminated remaining
    neighbor (standard construction; width equals the sweep width).
    """
    order = sweep.order
    if not order:
        return TreeDecomposition(bags={0: frozenset()}, children={0: []}, root=0)
    children = {i: kids for i, kids in enumerate(sweep.tree_children())}
    bags = {i: sweep.bags[i] for i in range(len(order))}
    return TreeDecomposition(bags=bags, children=children, root=len(order) - 1)


def decomposition_from_ordering(
    graph: Graph, ordering: Sequence[Vertex], validate: bool = True
) -> TreeDecomposition:
    """Build a tree decomposition from an elimination ordering.

    The bag of vertex ``v`` is ``{v} ∪ N(v)`` at elimination time; the parent
    of the bag of ``v`` is the bag of the earliest-eliminated remaining
    neighbor (standard construction; width equals the ordering width).

    ``validate=False`` skips the final validation pass (quadratic in the
    instance size); the construction itself is sound for any permutation of
    the vertices, so validation only guards the ordering contract.
    """
    vertices = list(ordering)
    if set(vertices) != set(graph.vertices) or len(vertices) != len(graph):
        raise DecompositionError("ordering must contain every vertex exactly once")
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}
    bags: list[frozenset] = []
    width = 0
    for v in vertices:
        neighbors = adjacency.pop(v)
        for u in neighbors:
            adjacency[u].discard(v)
        bags.append(frozenset({v} | neighbors))
        width = max(width, len(neighbors))
        neighbor_list = list(neighbors)
        for i, a in enumerate(neighbor_list):
            for b in neighbor_list[i + 1 :]:
                adjacency[a].add(b)
                adjacency[b].add(a)
    decomposition = decomposition_from_sweep(
        EliminationSweep(order=vertices, bags=bags, width=width)
    )
    if validate:
        decomposition.validate(graph)
    return decomposition


def tree_decomposition(graph: Graph, exact: bool = False) -> TreeDecomposition:
    """A tree decomposition of ``graph`` (heuristic by default, exact if asked)."""
    if len(graph) == 0:
        return TreeDecomposition(bags={0: frozenset()}, children={0: []}, root=0)
    if exact:
        return decomposition_from_ordering(graph, exact_ordering(graph))
    return decomposition_from_sweep(best_heuristic_sweep(graph))


def treewidth(graph: Graph, exact: bool = False) -> int:
    """The treewidth of ``graph`` (upper bound unless ``exact=True``)."""
    if len(graph) == 0:
        return -1
    if exact:
        return ordering_width(graph, exact_ordering(graph))
    _, width = best_heuristic_ordering_with_width(graph)
    return width


def treewidth_lower_bound(graph: Graph) -> int:
    """A cheap treewidth lower bound: the degeneracy of the graph."""
    vertices = list(graph.vertices)
    index = {v: i for i, v in enumerate(vertices)}
    adjacency = [{index[u] for u in graph.neighbors(v)} for v in vertices]
    alive = [True] * len(vertices)
    degree = [len(neighbors) for neighbors in adjacency]
    heap = [(degree[i], i) for i in range(len(vertices))]
    heapq.heapify(heap)
    degeneracy = 0
    for _ in range(len(vertices)):
        while True:
            current, v = heapq.heappop(heap)
            if alive[v] and current == degree[v]:
                break
        alive[v] = False
        degeneracy = max(degeneracy, degree[v])
        for u in adjacency[v]:
            adjacency[u].discard(v)
            degree[u] -= 1
            heapq.heappush(heap, (degree[u], u))
    return degeneracy


def _stable_key(vertex: Any) -> tuple[str, str]:
    return (type(vertex).__name__, repr(vertex))
