"""Tree-depth and elimination forests (Definition 9.1 of the paper).

An elimination forest of a graph G is a rooted forest on V(G) such that every
edge of G connects an ancestor-descendant pair.  The tree-depth of G is the
minimum height (number of vertices on the longest root-to-leaf path) of such a
forest.  Theorem 9.7 produces unfoldings of tree-depth at most arity(sigma);
by [5], pathwidth and treewidth are below tree-depth, which is how the
bounded-pathwidth lineage results apply to unfolded instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import DecompositionError
from repro.structure.graph import Graph, Vertex


@dataclass
class EliminationForest:
    """A rooted forest on the vertices of a graph, given by a parent map."""

    parent: dict[Vertex, Vertex | None]

    @property
    def roots(self) -> list[Vertex]:
        return [v for v, p in self.parent.items() if p is None]

    def depth_of(self, vertex: Vertex) -> int:
        """1-based depth of ``vertex`` (roots have depth 1)."""
        depth = 1
        current = vertex
        seen = {vertex}
        while self.parent[current] is not None:
            current = self.parent[current]
            if current in seen:
                raise DecompositionError("parent map contains a cycle")
            seen.add(current)
            depth += 1
        return depth

    @property
    def height(self) -> int:
        """The height of the forest (max depth over vertices); 0 if empty."""
        if not self.parent:
            return 0
        return max(self.depth_of(v) for v in self.parent)

    def ancestors(self, vertex: Vertex) -> list[Vertex]:
        """Strict ancestors of ``vertex``, closest first."""
        result: list[Vertex] = []
        current = self.parent[vertex]
        while current is not None:
            result.append(current)
            current = self.parent[current]
        return result

    def is_valid_for(self, graph: Graph) -> bool:
        try:
            self.validate(graph)
        except DecompositionError:
            return False
        return True

    def validate(self, graph: Graph) -> None:
        if set(self.parent) != set(graph.vertices):
            raise DecompositionError("elimination forest must cover exactly the graph vertices")
        for u, v in graph.edges():
            if u not in self.ancestors(v) and v not in self.ancestors(u) and u != v:
                raise DecompositionError(
                    f"edge ({u!r}, {v!r}) does not connect an ancestor-descendant pair"
                )


def elimination_forest_from_parent(parent: Mapping[Vertex, Vertex | None]) -> EliminationForest:
    return EliminationForest(dict(parent))


def tree_depth(graph: Graph, exact: bool = True) -> int:
    """The tree-depth of ``graph``.

    Exact recursive computation (memoized over connected subgraphs); suitable
    for the small graphs we measure.  For larger graphs, ``exact=False`` falls
    back to a DFS-based upper bound.
    """
    if len(graph) == 0:
        return 0
    if exact and len(graph) <= 14:
        forest = optimal_elimination_forest(graph)
        return forest.height
    return dfs_elimination_forest(graph).height


def dfs_elimination_forest(graph: Graph) -> EliminationForest:
    """An elimination forest from DFS trees (valid but not optimal).

    Every non-tree edge of a DFS is a back edge, so DFS trees are elimination
    forests; their height is at most 2^(tree-depth), a classical bound.
    """
    parent: dict[Vertex, Vertex | None] = {}
    visited: set[Vertex] = set()
    for start in sorted(graph.vertices, key=_stable_key):
        if start in visited:
            continue
        # Parents are assigned when a vertex is *entered* (popped), not when it
        # is first seen: marking at push time yields a traversal with cross
        # edges, which is not a DFS tree and not an elimination forest.
        stack: list[tuple[Vertex, Vertex | None]] = [(start, None)]
        while stack:
            current, predecessor = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            parent[current] = predecessor
            for neighbor in sorted(graph.neighbors(current), key=_stable_key, reverse=True):
                if neighbor not in visited:
                    stack.append((neighbor, current))
    forest = EliminationForest(parent)
    forest.validate(graph)
    return forest


def optimal_elimination_forest(graph: Graph) -> EliminationForest:
    """An elimination forest of minimum height (exact tree-depth).

    Recursive definition: td(G) = 1 + min over root v of td(G - v) for
    connected G, and the max over components otherwise.  Memoized on vertex
    sets; exponential, for graphs of ~14 vertices or fewer.
    """
    memo: dict[frozenset, tuple[int, dict[Vertex, Vertex | None]]] = {}

    def solve(vertices: frozenset) -> tuple[int, dict[Vertex, Vertex | None]]:
        if not vertices:
            return 0, {}
        if vertices in memo:
            return memo[vertices]
        sub = graph.subgraph(vertices)
        components = sub.connected_components()
        if len(components) > 1:
            height = 0
            parent: dict[Vertex, Vertex | None] = {}
            for component in components:
                comp_height, comp_parent = solve(frozenset(component))
                height = max(height, comp_height)
                parent.update(comp_parent)
            memo[vertices] = (height, parent)
            return memo[vertices]
        best_height = len(vertices) + 1
        best_parent: dict[Vertex, Vertex | None] = {}
        best_root: Vertex | None = None
        for root in sorted(vertices, key=_stable_key):
            rest_height, rest_parent = solve(vertices - {root})
            if 1 + rest_height < best_height:
                best_height = 1 + rest_height
                best_parent = rest_parent
                best_root = root
                if best_height == 1:
                    break
        parent = dict(best_parent)
        parent[best_root] = None
        # Re-root the forests of the remainder under the chosen root.
        for v, p in list(parent.items()):
            if p is None and v != best_root:
                parent[v] = best_root
        memo[vertices] = (best_height, parent)
        return memo[vertices]

    height, parent = solve(frozenset(graph.vertices))
    forest = EliminationForest(parent)
    forest.validate(graph)
    if forest.height != height:  # pragma: no cover - internal consistency check
        raise DecompositionError("computed forest height does not match tree-depth")
    return forest


def pathwidth_upper_bound_from_tree_depth(depth: int) -> int:
    """Lemma 11 of [5]: pathwidth <= tree-depth - 1."""
    return max(depth - 1, -1)


def _stable_key(vertex: Any) -> tuple[str, str]:
    return (type(vertex).__name__, repr(vertex))
