"""Seed elimination heuristics, kept as differential oracles.

PR 5 rebuilt the structural front-end as indexed, heap-driven kernels (the
lazily-updated degree / fill-count orderings and the fused elimination sweep
of :mod:`repro.structure.elimination`).  This module preserves the *seed*
algorithms — the per-step linear scan of min-degree, the per-step full
``fill_in`` rescan of min-fill, and the decomposition builder that re-runs
the elimination and re-validates the result — in their original form, for
two purposes:

* **differential testing**: the property suite checks that the indexed
  kernels pick exactly the same vertices (identical tie-breaking), hence
  certify exactly the same widths, as these references on randomized graph
  families (``tests/test_structure_kernels.py``);
* **benchmarking**: ``benchmarks/bench_structure.py`` measures the fused
  front-end against this seed path and gates CI on a >= 3x speedup.

Everything here intentionally inherits the seed's complexity: min-fill
recomputes every fill count from scratch on every elimination step, and
``best_heuristic_ordering_seed`` re-runs :func:`ordering_width_seed` over
both candidate orderings.  Do not use these from production code paths.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import DecompositionError
from repro.structure.graph import Graph, Vertex
from repro.structure.tree_decomposition import BagId, TreeDecomposition

__all__ = [
    "best_heuristic_ordering_seed",
    "decomposition_from_ordering_seed",
    "min_degree_ordering_seed",
    "min_fill_ordering_seed",
    "ordering_width_seed",
]


def _eliminate(adjacency: dict[Vertex, set[Vertex]], v: Vertex) -> int:
    """Eliminate ``v`` in-place, returning its degree at elimination time."""
    neighbors = adjacency.pop(v)
    for u in neighbors:
        adjacency[u].discard(v)
    neighbor_list = list(neighbors)
    for i, a in enumerate(neighbor_list):
        for b in neighbor_list[i + 1 :]:
            adjacency[a].add(b)
            adjacency[b].add(a)
    return len(neighbor_list)


def ordering_width_seed(graph: Graph, ordering: Sequence[Vertex]) -> int:
    """The seed width computation: one full elimination replay."""
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}
    width = 0
    for v in ordering:
        width = max(width, _eliminate(adjacency, v))
    return width


def min_degree_ordering_seed(graph: Graph) -> list[Vertex]:
    """The seed min-degree heuristic: a linear scan for the minimum each step."""
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}
    ordering: list[Vertex] = []
    while adjacency:
        v = min(adjacency, key=lambda u: (len(adjacency[u]), _stable_key(u)))
        ordering.append(v)
        _eliminate(adjacency, v)
    return ordering


def min_fill_ordering_seed(graph: Graph) -> list[Vertex]:
    """The seed min-fill heuristic: every fill count recomputed every step."""
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}

    def fill_in(v: Vertex) -> int:
        neighbors = list(adjacency[v])
        missing = 0
        for i, a in enumerate(neighbors):
            for b in neighbors[i + 1 :]:
                if b not in adjacency[a]:
                    missing += 1
        return missing

    ordering: list[Vertex] = []
    while adjacency:
        v = min(adjacency, key=lambda u: (fill_in(u), len(adjacency[u]), _stable_key(u)))
        ordering.append(v)
        _eliminate(adjacency, v)
    return ordering


def best_heuristic_ordering_seed(graph: Graph) -> list[Vertex]:
    """The seed selection: re-run ``ordering_width`` over both candidates."""
    candidates = [min_degree_ordering_seed(graph), min_fill_ordering_seed(graph)]
    return min(candidates, key=lambda order: ordering_width_seed(graph, order))


def decomposition_from_ordering_seed(
    graph: Graph, ordering: Sequence[Vertex]
) -> TreeDecomposition:
    """The seed decomposition builder: a second elimination replay plus a full
    ``validate`` pass (quadratic in the instance size)."""
    vertices = list(ordering)
    if set(vertices) != set(graph.vertices):
        raise DecompositionError("ordering must contain every vertex exactly once")
    if not vertices:
        return TreeDecomposition(bags={0: frozenset()}, children={0: []}, root=0)

    position = {v: i for i, v in enumerate(vertices)}
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}
    bag_of: dict[Vertex, frozenset] = {}
    for v in vertices:
        neighbors = adjacency.pop(v)
        for u in neighbors:
            adjacency[u].discard(v)
        bag_of[v] = frozenset({v} | neighbors)
        neighbor_list = list(neighbors)
        for i, a in enumerate(neighbor_list):
            for b in neighbor_list[i + 1 :]:
                adjacency[a].add(b)
                adjacency[b].add(a)

    ids = {v: i for i, v in enumerate(vertices)}
    children: dict[BagId, list[BagId]] = {i: [] for i in range(len(vertices))}
    root = ids[vertices[-1]]
    for v in vertices[:-1]:
        later_neighbors = [u for u in bag_of[v] if u != v and position[u] > position[v]]
        if later_neighbors:
            parent_vertex = min(later_neighbors, key=lambda u: position[u])
            children[ids[parent_vertex]].append(ids[v])
        else:
            if ids[v] != root:
                children[root].append(ids[v])
    bags = {ids[v]: bag_of[v] for v in vertices}
    decomposition = TreeDecomposition(bags=bags, children=children, root=root)
    decomposition.validate(graph)
    return decomposition


def _stable_key(vertex: Vertex) -> tuple[str, str]:
    return (type(vertex).__name__, repr(vertex))
