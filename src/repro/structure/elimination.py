"""Elimination orderings for treewidth computation.

Eliminating a vertex connects all its remaining neighbors into a clique.  The
width of an ordering is the maximum number of neighbors a vertex has at its
elimination time; the minimum width over all orderings equals the treewidth.
We provide the classical min-degree and min-fill heuristics as well as an
exact iterative-deepening search for small graphs.
"""

from __future__ import annotations

from typing import Sequence

from repro.structure.graph import Graph, Vertex


def _eliminate(adjacency: dict[Vertex, set[Vertex]], v: Vertex) -> int:
    """Eliminate ``v`` in-place, returning its degree at elimination time."""
    neighbors = adjacency.pop(v)
    for u in neighbors:
        adjacency[u].discard(v)
    neighbor_list = list(neighbors)
    for i, a in enumerate(neighbor_list):
        for b in neighbor_list[i + 1 :]:
            adjacency[a].add(b)
            adjacency[b].add(a)
    return len(neighbor_list)


def ordering_width(graph: Graph, ordering: Sequence[Vertex]) -> int:
    """The width of an elimination ordering (the treewidth bound it certifies)."""
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}
    width = 0
    for v in ordering:
        width = max(width, _eliminate(adjacency, v))
    return width


def min_degree_ordering(graph: Graph) -> list[Vertex]:
    """The min-degree heuristic: repeatedly eliminate a vertex of minimum degree."""
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}
    ordering: list[Vertex] = []
    while adjacency:
        v = min(adjacency, key=lambda u: (len(adjacency[u]), _stable_key(u)))
        ordering.append(v)
        _eliminate(adjacency, v)
    return ordering


def min_fill_ordering(graph: Graph) -> list[Vertex]:
    """The min-fill heuristic: eliminate the vertex adding fewest fill edges."""
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}

    def fill_in(v: Vertex) -> int:
        neighbors = list(adjacency[v])
        missing = 0
        for i, a in enumerate(neighbors):
            for b in neighbors[i + 1 :]:
                if b not in adjacency[a]:
                    missing += 1
        return missing

    ordering: list[Vertex] = []
    while adjacency:
        v = min(adjacency, key=lambda u: (fill_in(u), len(adjacency[u]), _stable_key(u)))
        ordering.append(v)
        _eliminate(adjacency, v)
    return ordering


def best_heuristic_ordering(graph: Graph) -> list[Vertex]:
    """The better of the min-degree and min-fill orderings."""
    candidates = [min_degree_ordering(graph), min_fill_ordering(graph)]
    return min(candidates, key=lambda order: ordering_width(graph, order))


def exists_ordering_of_width(graph: Graph, target: int) -> bool:
    """Decide whether the graph has an elimination ordering of width <= target.

    Depth-first search with memoization on the set of remaining vertices;
    exponential, intended for graphs of at most ~15 vertices.
    """
    failed: set[frozenset[Vertex]] = set()

    def recurse(adjacency: dict[Vertex, set[Vertex]]) -> bool:
        if not adjacency:
            return True
        key = frozenset(adjacency)
        if key in failed:
            return False
        # Simplicial-vertex rule: a vertex whose neighborhood is a clique and
        # small enough can always be eliminated first.
        for v in adjacency:
            neighbors = adjacency[v]
            if len(neighbors) <= target and _is_clique(neighbors, adjacency):
                next_adjacency = {u: set(ns) for u, ns in adjacency.items()}
                _eliminate(next_adjacency, v)
                if recurse(next_adjacency):
                    return True
                failed.add(key)
                return False
        for v in sorted(adjacency, key=lambda u: (len(adjacency[u]), _stable_key(u))):
            if len(adjacency[v]) > target:
                continue
            next_adjacency = {u: set(ns) for u, ns in adjacency.items()}
            _eliminate(next_adjacency, v)
            if recurse(next_adjacency):
                return True
        failed.add(key)
        return False

    return recurse({v: graph.neighbors(v) for v in graph.vertices})


def treewidth_dp_oracle(graph: Graph) -> int:
    """Exact treewidth by the Held–Karp-style dynamic program over vertex sets.

    ``f(S)`` is the least width of an elimination prefix that eliminates
    exactly the vertices of ``S``:

        f(∅) = 0,
        f(S) = min over v in S of max(f(S - v), q(S - v, v)),

    where ``q(S, v)`` counts the vertices outside ``S ∪ {v}`` reachable from
    ``v`` through ``S`` — the degree of ``v`` at elimination time, since
    eliminating ``S`` connects exactly such pairs.  The treewidth is ``f(V)``.

    This is a fully independent computation from the branch-and-bound search
    of :func:`exists_ordering_of_width` (no shared elimination machinery), so
    the test suite uses it as a cross-check oracle.  O(2^n · poly(n)): only
    for graphs of at most ~14 vertices.
    """
    vertices = sorted(graph.vertices, key=_stable_key)
    n = len(vertices)
    if n == 0:
        return -1
    index = {v: i for i, v in enumerate(vertices)}
    adjacency = [0] * n
    for v in vertices:
        for u in graph.neighbors(v):
            adjacency[index[v]] |= 1 << index[u]

    def elimination_degree(inside: int, v: int) -> int:
        """q(inside, v): neighbors of v outside ``inside`` via paths through it."""
        visited = 1 << v
        stack = [v]
        outside = 0
        while stack:
            u = stack.pop()
            fresh = adjacency[u] & ~visited
            visited |= fresh
            while fresh:
                w = (fresh & -fresh).bit_length() - 1
                fresh &= fresh - 1
                if inside >> w & 1:
                    stack.append(w)
                else:
                    outside |= 1 << w
        return outside.bit_count()

    memo: dict[int, int] = {0: 0}

    def best_width(subset: int) -> int:
        cached = memo.get(subset)
        if cached is not None:
            return cached
        result = n
        remaining = subset
        while remaining:
            v = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            rest = subset & ~(1 << v)
            result = min(result, max(best_width(rest), elimination_degree(rest, v)))
        memo[subset] = result
        return result

    return best_width((1 << n) - 1)


def _is_clique(candidate: set[Vertex], adjacency: dict[Vertex, set[Vertex]]) -> bool:
    candidates = list(candidate)
    for i, a in enumerate(candidates):
        for b in candidates[i + 1 :]:
            if b not in adjacency[a]:
                return False
    return True


def exact_ordering(graph: Graph) -> list[Vertex]:
    """An elimination ordering of minimum width (exact treewidth).

    Finds the exact width by iterative deepening from a degeneracy-style lower
    bound up to the heuristic upper bound, then reconstructs an ordering
    greedily, only making moves that keep an ordering of that width feasible.
    """
    if len(graph) == 0:
        return []
    heuristic = best_heuristic_ordering(graph)
    upper = ordering_width(graph, heuristic)
    target = upper
    for width in range(0, upper):
        if exists_ordering_of_width(graph, width):
            target = width
            break

    ordering: list[Vertex] = []
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}
    while adjacency:
        chosen = None
        for v in sorted(adjacency, key=lambda u: (len(adjacency[u]), _stable_key(u))):
            if len(adjacency[v]) > target:
                continue
            trial = {u: set(ns) for u, ns in adjacency.items()}
            _eliminate(trial, v)
            residual = Graph()
            for u in trial:
                residual.add_vertex(u)
            for u, ns in trial.items():
                for w in ns:
                    residual.add_edge(u, w)
            if exists_ordering_of_width(residual, target):
                chosen = v
                break
        if chosen is None:  # pragma: no cover - cannot happen if target is feasible
            chosen = min(adjacency, key=lambda u: (len(adjacency[u]), _stable_key(u)))
        ordering.append(chosen)
        _eliminate(adjacency, chosen)
    return ordering


def _stable_key(vertex: Vertex) -> tuple[str, str]:
    return (type(vertex).__name__, repr(vertex))
