"""Elimination orderings for treewidth computation.

Eliminating a vertex connects all its remaining neighbors into a clique.  The
width of an ordering is the maximum number of neighbors a vertex has at its
elimination time; the minimum width over all orderings equals the treewidth.
We provide the classical min-degree and min-fill heuristics as well as an
exact iterative-deepening search for small graphs.

The heuristics run as *indexed* kernels: vertices are mapped to dense
integers (ordered by the stable tie-breaking key, so the heap tie-breaks
exactly like the seed linear scans), candidates live in a lazily-updated
binary heap, and after each elimination only the vertices whose degree or
fill count can actually have changed — the eliminated vertex's neighborhood,
plus (for min-fill) the common neighbors of each added fill edge — are
re-scored.  The seed heuristics, which re-scan every remaining vertex per
step, are preserved in :mod:`repro.structure.reference` as differential
oracles.

Each sweep records the bag (closed neighborhood at elimination time) of every
vertex and the running width, so callers get the certified width, and a tree
decomposition, as by-products of the ordering computation instead of
replaying the elimination (:func:`ordering_width`) once per consumer.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.structure.graph import Graph, Vertex


@dataclass
class EliminationSweep:
    """The full record of one elimination run.

    Attributes
    ----------
    order:
        The elimination ordering.
    bags:
        ``bags[i]`` is the closed neighborhood of ``order[i]`` at its
        elimination time — exactly the bag the standard ordering-to-
        decomposition construction assigns to it.
    width:
        The width certified by the ordering (``max(len(bag)) - 1``, and
        ``0`` for the empty graph), equal to ``ordering_width(graph, order)``.
    """

    order: list[Vertex]
    bags: list[frozenset]
    width: int

    def tree_children(self) -> list[list[int]]:
        """The classic ordering-to-decomposition tree over elimination indices.

        ``result[t]`` lists the children of bag ``t``; the parent of the bag
        of ``order[i]`` is the bag of its earliest-eliminated remaining
        neighbor (everything else in ``bags[i]`` is eliminated strictly
        later), a lone vertex of a disconnected piece hangs off the root
        (the last bag), and children always carry a smaller index than their
        parent.
        """
        n = len(self.order)
        children: list[list[int]] = [[] for _ in range(n)]
        if n == 0:
            return children
        position = {v: i for i, v in enumerate(self.order)}
        root = n - 1
        for i in range(root):
            v = self.order[i]
            later = [position[u] for u in self.bags[i] if u != v]
            children[min(later) if later else root].append(i)
        return children


def _eliminate(adjacency: dict[Vertex, set[Vertex]], v: Vertex) -> int:
    """Eliminate ``v`` in-place, returning its degree at elimination time."""
    neighbors = adjacency.pop(v)
    for u in neighbors:
        adjacency[u].discard(v)
    neighbor_list = list(neighbors)
    for i, a in enumerate(neighbor_list):
        for b in neighbor_list[i + 1 :]:
            adjacency[a].add(b)
            adjacency[b].add(a)
    return len(neighbor_list)


def ordering_width(graph: Graph, ordering: Sequence[Vertex]) -> int:
    """The width of an elimination ordering (the treewidth bound it certifies)."""
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}
    width = 0
    for v in ordering:
        width = max(width, _eliminate(adjacency, v))
    return width


def _fill_count(adjacency: list[set[int]], v: int) -> int:
    """Missing edges among the current neighbors of ``v``."""
    neighbors = list(adjacency[v])
    missing = 0
    for i, a in enumerate(neighbors):
        adjacent_to_a = adjacency[a]
        for b in neighbors[i + 1 :]:
            if b not in adjacent_to_a:
                missing += 1
    return missing


def _indexed_sweep(graph: Graph, use_fill: bool) -> EliminationSweep:
    """One heap-driven elimination sweep (min-degree or min-fill).

    Vertices are indexed in stable-key order, so heap entries compare as
    ``(score..., stable_key)`` — the exact tie-breaking of the seed scans —
    and stale entries are discarded lazily against the current score arrays.
    """
    vertices = sorted(graph.vertices, key=_stable_key)
    n = len(vertices)
    index = {v: i for i, v in enumerate(vertices)}
    adjacency: list[set[int]] = [
        {index[u] for u in graph.neighbors(v)} for v in vertices
    ]
    alive = [True] * n
    degree = [len(neighbors) for neighbors in adjacency]
    fill = [_fill_count(adjacency, i) for i in range(n)] if use_fill else []

    if use_fill:
        heap = [(fill[i], degree[i], i) for i in range(n)]
    else:
        heap = [(degree[i], i) for i in range(n)]
    heapq.heapify(heap)

    order: list[Vertex] = []
    bags: list[frozenset] = []
    width = 0
    for _ in range(n):
        while True:
            entry = heapq.heappop(heap)
            v = entry[-1]
            if not alive[v]:
                continue
            if use_fill:
                if entry[0] == fill[v] and entry[1] == degree[v]:
                    break
            elif entry[0] == degree[v]:
                break
        alive[v] = False
        neighbors = list(adjacency[v])
        order.append(vertices[v])
        bags.append(frozenset(vertices[u] for u in neighbors) | {vertices[v]})
        width = max(width, len(neighbors))

        added: list[tuple[int, int]] = []
        for u in neighbors:
            adjacency[u].discard(v)
        for i, a in enumerate(neighbors):
            adjacent_to_a = adjacency[a]
            for b in neighbors[i + 1 :]:
                if b not in adjacent_to_a:
                    adjacent_to_a.add(b)
                    adjacency[b].add(a)
                    added.append((a, b))
        adjacency[v] = set()

        if use_fill:
            # Re-score exactly the vertices whose neighborhood, or whose
            # neighborhood's internal edges, changed: N(v), plus the common
            # neighbors of each added fill edge (they see one fewer missing
            # pair).  Everything else keeps its score, and its heap entries
            # stay valid.
            dirty = set(neighbors)
            for a, b in added:
                dirty |= adjacency[a] & adjacency[b]
            for u in dirty:
                degree[u] = len(adjacency[u])
                fill[u] = _fill_count(adjacency, u)
                heapq.heappush(heap, (fill[u], degree[u], u))
        else:
            for u in neighbors:
                degree[u] = len(adjacency[u])
                heapq.heappush(heap, (degree[u], u))
    return EliminationSweep(order=order, bags=bags, width=width)


def min_degree_sweep(graph: Graph) -> EliminationSweep:
    """The min-degree elimination sweep (ordering, bags, and width together)."""
    return _indexed_sweep(graph, use_fill=False)


def min_fill_sweep(graph: Graph) -> EliminationSweep:
    """The min-fill elimination sweep (ordering, bags, and width together)."""
    return _indexed_sweep(graph, use_fill=True)


def best_heuristic_sweep(graph: Graph) -> EliminationSweep:
    """The better of the min-degree and min-fill sweeps (min-degree on ties)."""
    candidates = [min_degree_sweep(graph), min_fill_sweep(graph)]
    return min(candidates, key=lambda sweep: sweep.width)


def min_degree_ordering(graph: Graph) -> list[Vertex]:
    """The min-degree heuristic: repeatedly eliminate a vertex of minimum degree."""
    return min_degree_sweep(graph).order


def min_fill_ordering(graph: Graph) -> list[Vertex]:
    """The min-fill heuristic: eliminate the vertex adding fewest fill edges."""
    return min_fill_sweep(graph).order


def min_degree_ordering_with_width(graph: Graph) -> tuple[list[Vertex], int]:
    """The min-degree ordering together with the width it certifies."""
    sweep = min_degree_sweep(graph)
    return sweep.order, sweep.width


def min_fill_ordering_with_width(graph: Graph) -> tuple[list[Vertex], int]:
    """The min-fill ordering together with the width it certifies."""
    sweep = min_fill_sweep(graph)
    return sweep.order, sweep.width


def best_heuristic_ordering(graph: Graph) -> list[Vertex]:
    """The better of the min-degree and min-fill orderings."""
    return best_heuristic_sweep(graph).order


def best_heuristic_ordering_with_width(graph: Graph) -> tuple[list[Vertex], int]:
    """The best heuristic ordering together with the width it certifies."""
    sweep = best_heuristic_sweep(graph)
    return sweep.order, sweep.width


def exists_ordering_of_width(graph: Graph, target: int) -> bool:
    """Decide whether the graph has an elimination ordering of width <= target.

    Depth-first search with memoization on the set of remaining vertices;
    exponential, intended for graphs of at most ~15 vertices.
    """
    failed: set[frozenset[Vertex]] = set()

    # repro-analysis: allow(REC001): depth <= |V| and the search is documented for graphs of at most ~15 vertices
    def recurse(adjacency: dict[Vertex, set[Vertex]]) -> bool:
        if not adjacency:
            return True
        key = frozenset(adjacency)
        if key in failed:
            return False
        # Simplicial-vertex rule: a vertex whose neighborhood is a clique and
        # small enough can always be eliminated first.
        for v in adjacency:
            neighbors = adjacency[v]
            if len(neighbors) <= target and _is_clique(neighbors, adjacency):
                next_adjacency = {u: set(ns) for u, ns in adjacency.items()}
                _eliminate(next_adjacency, v)
                if recurse(next_adjacency):
                    return True
                failed.add(key)
                return False
        for v in sorted(adjacency, key=lambda u: (len(adjacency[u]), _stable_key(u))):
            if len(adjacency[v]) > target:
                continue
            next_adjacency = {u: set(ns) for u, ns in adjacency.items()}
            _eliminate(next_adjacency, v)
            if recurse(next_adjacency):
                return True
        failed.add(key)
        return False

    return recurse({v: graph.neighbors(v) for v in graph.vertices})


def treewidth_dp_oracle(graph: Graph) -> int:
    """Exact treewidth by the Held–Karp-style dynamic program over vertex sets.

    ``f(S)`` is the least width of an elimination prefix that eliminates
    exactly the vertices of ``S``:

        f(∅) = 0,
        f(S) = min over v in S of max(f(S - v), q(S - v, v)),

    where ``q(S, v)`` counts the vertices outside ``S ∪ {v}`` reachable from
    ``v`` through ``S`` — the degree of ``v`` at elimination time, since
    eliminating ``S`` connects exactly such pairs.  The treewidth is ``f(V)``.

    This is a fully independent computation from the branch-and-bound search
    of :func:`exists_ordering_of_width` (no shared elimination machinery), so
    the test suite uses it as a cross-check oracle.  O(2^n · poly(n)): only
    for graphs of at most ~14 vertices.
    """
    vertices = sorted(graph.vertices, key=_stable_key)
    n = len(vertices)
    if n == 0:
        return -1
    index = {v: i for i, v in enumerate(vertices)}
    adjacency = [0] * n
    for v in vertices:
        for u in graph.neighbors(v):
            adjacency[index[v]] |= 1 << index[u]

    def elimination_degree(inside: int, v: int) -> int:
        """q(inside, v): neighbors of v outside ``inside`` via paths through it."""
        visited = 1 << v
        stack = [v]
        outside = 0
        while stack:
            u = stack.pop()
            fresh = adjacency[u] & ~visited
            visited |= fresh
            while fresh:
                w = (fresh & -fresh).bit_length() - 1
                fresh &= fresh - 1
                if inside >> w & 1:
                    stack.append(w)
                else:
                    outside |= 1 << w
        return outside.bit_count()

    memo: dict[int, int] = {0: 0}

    # repro-analysis: allow(REC001): memoized DP over vertex bitmasks, depth <= n; the exact oracle is only run on small graphs
    def best_width(subset: int) -> int:
        cached = memo.get(subset)
        if cached is not None:
            return cached
        result = n
        remaining = subset
        while remaining:
            v = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            rest = subset & ~(1 << v)
            result = min(result, max(best_width(rest), elimination_degree(rest, v)))
        memo[subset] = result
        return result

    return best_width((1 << n) - 1)


def _is_clique(candidate: set[Vertex], adjacency: dict[Vertex, set[Vertex]]) -> bool:
    candidates = list(candidate)
    for i, a in enumerate(candidates):
        for b in candidates[i + 1 :]:
            if b not in adjacency[a]:
                return False
    return True


def exact_ordering(graph: Graph) -> list[Vertex]:
    """An elimination ordering of minimum width (exact treewidth).

    Finds the exact width by iterative deepening from a degeneracy-style lower
    bound up to the heuristic upper bound, then reconstructs an ordering
    greedily, only making moves that keep an ordering of that width feasible.
    """
    if len(graph) == 0:
        return []
    _, upper = best_heuristic_ordering_with_width(graph)
    target = upper
    for width in range(0, upper):
        if exists_ordering_of_width(graph, width):
            target = width
            break

    ordering: list[Vertex] = []
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}
    while adjacency:
        chosen = None
        for v in sorted(adjacency, key=lambda u: (len(adjacency[u]), _stable_key(u))):
            if len(adjacency[v]) > target:
                continue
            trial = {u: set(ns) for u, ns in adjacency.items()}
            _eliminate(trial, v)
            residual = Graph()
            for u in trial:
                residual.add_vertex(u)
            for u, ns in trial.items():
                for w in ns:
                    residual.add_edge(u, w)
            if exists_ordering_of_width(residual, target):
                chosen = v
                break
        if chosen is None:  # pragma: no cover - cannot happen if target is feasible
            chosen = min(adjacency, key=lambda u: (len(adjacency[u]), _stable_key(u)))
        ordering.append(chosen)
        _eliminate(adjacency, chosen)
    return ordering


def _stable_key(vertex: Vertex) -> tuple[str, str]:
    return (type(vertex).__name__, repr(vertex))
