"""Topological minors and grid-like structures (Definition 4.3, Lemma 4.4).

The hardness results of Sections 4, 5 and 8 extract a planar degree-3 graph H
as a *topological minor* of any graph of sufficiently large treewidth: an
injective mapping of V(H) into V(G) together with vertex-disjoint paths
realizing the edges of H.  The paper uses the polynomial grid-minor theorem
of Chekuri-Chuzhoy [10]; as a Python prototype substitution we provide:

* a backtracking embedder :func:`find_topological_minor` (exact, exponential,
  fine for the small H used in reductions),
* a specialized fast extractor of grid topological minors from grid/wall-like
  host graphs (:func:`embed_grid_in_grid`), covering the instance families the
  benchmark harness actually uses,
* the *skewed grid* construction of Lemma 8.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.structure.graph import Graph, Vertex


@dataclass
class TopologicalMinorEmbedding:
    """An embedding of H into G: vertex images plus vertex-disjoint paths."""

    vertex_map: dict[Vertex, Vertex]
    edge_paths: dict[tuple[Vertex, Vertex], list[Vertex]]

    def all_used_vertices(self) -> set[Vertex]:
        used = set(self.vertex_map.values())
        for path in self.edge_paths.values():
            used |= set(path)
        return used

    def validate(self, pattern: Graph, host: Graph) -> bool:
        """Check injectivity, path validity, and internal disjointness."""
        if len(set(self.vertex_map.values())) != len(self.vertex_map):
            return False
        if set(self.vertex_map) != set(pattern.vertices):
            return False
        interior_used: set[Vertex] = set()
        endpoints = set(self.vertex_map.values())
        covered_edges = set()
        for (u, v), path in self.edge_paths.items():
            if not pattern.has_edge(u, v):
                return False
            covered_edges.add(frozenset((u, v)))
            if path[0] != self.vertex_map[u] or path[-1] != self.vertex_map[v]:
                return False
            for a, b in zip(path, path[1:]):
                if not host.has_edge(a, b):
                    return False
            interior = path[1:-1]
            for w in interior:
                if w in interior_used or w in endpoints:
                    return False
                interior_used.add(w)
        expected_edges = {frozenset((u, v)) for u, v in pattern.edges()}
        return covered_edges == expected_edges


def find_topological_minor(
    pattern: Graph, host: Graph, max_path_length: int = 8
) -> TopologicalMinorEmbedding | None:
    """Search for an embedding of ``pattern`` as a topological minor of ``host``.

    Backtracking over branch-vertex placements and edge paths; exponential, so
    only suitable for small patterns (a handful of vertices) and moderate
    hosts.  ``max_path_length`` bounds the length of subdivision paths.
    """
    pattern_vertices = sorted(pattern.vertices, key=_stable_key)
    pattern_edges = [tuple(sorted(e, key=_stable_key)) for e in pattern.edges()]
    pattern_edges.sort(key=lambda e: (_stable_key(e[0]), _stable_key(e[1])))
    host_vertices = sorted(host.vertices, key=_stable_key)

    vertex_map: dict[Vertex, Vertex] = {}
    used: set[Vertex] = set()
    edge_paths: dict[tuple[Vertex, Vertex], list[Vertex]] = {}

    # repro-analysis: allow(REC001): backtracking depth <= |pattern vertices| + |pattern edges|, and minor patterns are small by construction
    def assign(index: int) -> bool:
        if index == len(pattern_vertices):
            return route(0)
        v = pattern_vertices[index]
        for candidate in host_vertices:
            if candidate in used:
                continue
            if host.degree(candidate) < pattern.degree(v):
                continue
            vertex_map[v] = candidate
            used.add(candidate)
            if assign(index + 1):
                return True
            used.discard(candidate)
            del vertex_map[v]
        return False

    # repro-analysis: allow(REC001): mutual recursion with assign is bounded by the (small) pattern size
    def route(edge_index: int) -> bool:
        if edge_index == len(pattern_edges):
            return True
        u, v = pattern_edges[edge_index]
        source, target = vertex_map[u], vertex_map[v]
        blocked = used | set().union(*[set(p[1:-1]) for p in edge_paths.values()]) if edge_paths else set(used)
        for path in _paths_up_to(host, source, target, max_path_length, blocked - {source, target}):
            edge_paths[(u, v)] = path
            if route(edge_index + 1):
                return True
            del edge_paths[(u, v)]
        return False

    if assign(0):
        embedding = TopologicalMinorEmbedding(dict(vertex_map), dict(edge_paths))
        if embedding.validate(pattern, host):
            return embedding
    return None


def _paths_up_to(graph: Graph, source: Vertex, target: Vertex, limit: int, blocked: set[Vertex]):
    """Enumerate simple paths from source to target of length <= limit avoiding blocked interiors."""

    # repro-analysis: allow(REC001): path enumeration depth is capped by the explicit length limit (max_path_length)
    def extend(path: list[Vertex]):
        current = path[-1]
        if current == target:
            yield list(path)
            return
        if len(path) > limit:
            return
        for neighbor in sorted(graph.neighbors(current), key=_stable_key):
            if neighbor in path:
                continue
            if neighbor != target and neighbor in blocked:
                continue
            path.append(neighbor)
            yield from extend(path)
            path.pop()

    yield from extend([source])


def is_subdivision_of(subdivided: Graph, original: Graph) -> bool:
    """True iff ``subdivided`` is (isomorphic to) a subdivision of ``original``.

    We check by suppressing all degree-2 vertices of ``subdivided`` and testing
    whether the resulting multigraph equals ``original`` up to the identity on
    branch vertices — callers are expected to keep original vertex names on
    branch vertices, which all our subdivision generators do.
    """
    branch = {v for v in subdivided.vertices if subdivided.degree(v) != 2 or v in set(original.vertices)}
    recovered = Graph()
    for v in branch:
        recovered.add_vertex(v)
    visited_edges: set[frozenset] = set()
    for start in branch:
        for first in subdivided.neighbors(start):
            previous, current = start, first
            while current not in branch:
                nxt = [w for w in subdivided.neighbors(current) if w != previous]
                if len(nxt) != 1:
                    return False
                previous, current = current, nxt[0]
            key = frozenset((start, current))
            if key not in visited_edges and start != current:
                visited_edges.add(key)
                recovered.add_edge(start, current)
    if set(recovered.vertices) != set(original.vertices):
        return False
    return {frozenset(e) for e in recovered.edges()} == {frozenset(e) for e in original.edges()}


def subdivide(graph: Graph, times: int = 1) -> Graph:
    """Subdivide every edge of ``graph`` by inserting ``times`` fresh vertices."""
    result = Graph()
    for v in graph.vertices:
        result.add_vertex(v)
    for index, (u, v) in enumerate(sorted(graph.edges(), key=lambda e: (_stable_key(e[0]), _stable_key(e[1])))):
        previous = u
        for step in range(times):
            middle = ("sub", index, step)
            result.add_edge(previous, middle)
            previous = middle
        result.add_edge(previous, v)
    return result


def embed_grid_in_grid(size: int, host_rows: int, host_cols: int) -> TopologicalMinorEmbedding | None:
    """Embed the size x size grid as a topological minor of a host grid.

    When the host grid is at least as large, the identity embedding on the
    top-left corner works; this is the fast path used by the dichotomy
    benchmarks instead of the general (expensive) backtracking search.
    """
    if host_rows < size or host_cols < size:
        return None
    vertex_map = {(r, c): (r, c) for r in range(size) for c in range(size)}
    edge_paths: dict[tuple[Vertex, Vertex], list[Vertex]] = {}
    for r in range(size):
        for c in range(size):
            if r + 1 < size:
                edge_paths[((r, c), (r + 1, c))] = [(r, c), (r + 1, c)]
            if c + 1 < size:
                edge_paths[((r, c), (r, c + 1))] = [(r, c), (r, c + 1)]
    return TopologicalMinorEmbedding(vertex_map, edge_paths)


def skewed_grid(size: int) -> Graph:
    """The skewed grid used in the proof of Lemma 8.2.

    We realize it as the size x size grid with each "column" edge shifted by
    one: vertex (r, c) connects to (r+1, c) and to (r, c+1), plus the diagonal
    (r, c)-(r+1, c+1), yielding a degree-<=6 planar-ish graph whose treewidth
    is Theta(size).  Its exact shape is unimportant for the reproduction: what
    matters is that cutting it anywhere leaves many independent vertices with
    both an enumerated and a non-enumerated incident edge.
    """
    graph = Graph()
    for r in range(size):
        for c in range(size):
            graph.add_vertex((r, c))
    for r in range(size):
        for c in range(size):
            if r + 1 < size:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < size:
                graph.add_edge((r, c), (r, c + 1))
            if r + 1 < size and c + 1 < size:
                graph.add_edge((r, c), (r + 1, c + 1))
    return graph


def wall_graph(rows: int, cols: int) -> Graph:
    """The (rows x cols) wall: a degree-<=3 planar graph of treewidth Theta(min(rows, cols)).

    Walls are the canonical degree-3 high-treewidth graphs; they are the shape
    grid-minor extraction naturally produces for degree-3 patterns.
    """
    graph = Graph()
    for r in range(rows):
        for c in range(cols):
            graph.add_vertex((r, c))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
    for r in range(rows - 1):
        for c in range(cols):
            # vertical rungs in a brick-like pattern to keep degree <= 3
            if (r + c) % 2 == 0:
                graph.add_edge((r, c), (r + 1, c))
    return graph


def _stable_key(vertex: Any) -> tuple[str, str]:
    return (type(vertex).__name__, repr(vertex))
