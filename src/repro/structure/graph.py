"""A small undirected-graph implementation used throughout the library.

The paper's graphs are undirected, simple, and unlabeled (Section 2).  We keep
this class dependency-free (plain adjacency dicts) so that the decomposition
algorithms are self-contained; generators may convert to/from networkx when
convenient, but nothing in the core requires it.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator

Vertex = Hashable


class Graph:
    """A mutable, simple, undirected graph."""

    __slots__ = ("_adjacency",)

    def __init__(self, edges: Iterable[tuple[Vertex, Vertex]] = ()) -> None:
        self._adjacency: dict[Vertex, set[Vertex]] = {}
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction --------------------------------------------------------

    def add_vertex(self, v: Vertex) -> None:
        self._adjacency.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        if u == v:
            # The paper's graphs are simple: ignore self-loops.
            self.add_vertex(u)
            return
        self._adjacency.setdefault(u, set()).add(v)
        self._adjacency.setdefault(v, set()).add(u)

    def remove_vertex(self, v: Vertex) -> None:
        for neighbor in self._adjacency.pop(v, set()):
            self._adjacency[neighbor].discard(v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        self._adjacency.get(u, set()).discard(v)
        self._adjacency.get(v, set()).discard(u)

    def copy(self) -> "Graph":
        clone = Graph()
        clone._adjacency = {v: set(ns) for v, ns in self._adjacency.items()}
        return clone

    # -- accessors -----------------------------------------------------------

    @property
    def vertices(self) -> tuple[Vertex, ...]:
        return tuple(self._adjacency)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, v: object) -> bool:
        return v in self._adjacency

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adjacency)

    def neighbors(self, v: Vertex) -> set[Vertex]:
        return set(self._adjacency.get(v, set()))

    def degree(self, v: Vertex) -> int:
        return len(self._adjacency.get(v, set()))

    def max_degree(self) -> int:
        if not self._adjacency:
            return 0
        return max(len(ns) for ns in self._adjacency.values())

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return v in self._adjacency.get(u, set())

    def edges(self) -> list[tuple[Vertex, Vertex]]:
        """Each undirected edge once, as a canonically ordered pair."""
        seen: set[frozenset] = set()
        result: list[tuple[Vertex, Vertex]] = []
        for u, ns in self._adjacency.items():
            for v in ns:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    result.append((u, v))
        return result

    def edge_count(self) -> int:
        return sum(len(ns) for ns in self._adjacency.values()) // 2

    def __repr__(self) -> str:
        return f"Graph({len(self)} vertices, {self.edge_count()} edges)"

    # -- structure -----------------------------------------------------------

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        wanted = set(vertices)
        result = Graph()
        for v in wanted:
            if v in self._adjacency:
                result.add_vertex(v)
        for u, v in self.edges():
            if u in wanted and v in wanted:
                result.add_edge(u, v)
        return result

    def connected_components(self) -> list[set[Vertex]]:
        components: list[set[Vertex]] = []
        unseen = set(self._adjacency)
        while unseen:
            start = next(iter(unseen))
            component = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                for neighbor in self._adjacency[current]:
                    if neighbor not in component:
                        component.add(neighbor)
                        stack.append(neighbor)
            components.append(component)
            unseen -= component
        return components

    def is_connected(self) -> bool:
        return len(self) <= 1 or len(self.connected_components()) == 1

    def is_tree(self) -> bool:
        """Acyclic and connected (the paper's definition of a tree)."""
        return self.is_connected() and self.edge_count() == max(len(self) - 1, 0)

    def is_forest(self) -> bool:
        return all(
            self.subgraph(component).edge_count() == len(component) - 1
            for component in self.connected_components()
        )

    def has_cycle(self) -> bool:
        return not self.is_forest()

    def is_k_regular(self, k: int) -> bool:
        return all(self.degree(v) == k for v in self)

    def is_K_regular(self, degrees: Iterable[int]) -> bool:
        """True if every vertex degree belongs to the given finite set."""
        allowed = set(degrees)
        return all(self.degree(v) in allowed for v in self)

    def shortest_path(self, source: Vertex, target: Vertex) -> list[Vertex] | None:
        """BFS shortest path (as a vertex list), or None if disconnected."""
        if source == target:
            return [source]
        parents: dict[Vertex, Vertex] = {source: source}
        frontier = [source]
        while frontier:
            next_frontier: list[Vertex] = []
            for u in frontier:
                for v in self._adjacency[u]:
                    if v not in parents:
                        parents[v] = u
                        if v == target:
                            path = [v]
                            while path[-1] != source:
                                path.append(parents[path[-1]])
                            return list(reversed(path))
                        next_frontier.append(v)
            frontier = next_frontier
        return None

    def to_networkx(self) -> Any:
        """Convert to a networkx graph (only used by generators/tests)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.vertices)
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_networkx(cls, graph: Any) -> "Graph":
        result = cls()
        for v in graph.nodes():
            result.add_vertex(v)
        for u, v in graph.edges():
            result.add_edge(u, v)
        return result


def complete_graph(n: int) -> Graph:
    """The clique K_n on vertices 0..n-1."""
    graph = Graph()
    for i in range(n):
        graph.add_vertex(i)
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j)
    return graph


def path_graph(n: int) -> Graph:
    """The path on vertices 0..n-1."""
    graph = Graph()
    for i in range(n):
        graph.add_vertex(i)
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(n: int) -> Graph:
    """The cycle on vertices 0..n-1 (n >= 3)."""
    graph = path_graph(n)
    if n >= 3:
        graph.add_edge(n - 1, 0)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """The rows x cols grid graph; treewidth = min(rows, cols) for non-trivial grids."""
    graph = Graph()
    for r in range(rows):
        for c in range(cols):
            graph.add_vertex((r, c))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
    return graph


def complete_bipartite_graph(m: int, n: int) -> Graph:
    """K_{m,n} with parts labelled ('a', i) and ('b', j)."""
    graph = Graph()
    for i in range(m):
        graph.add_vertex(("a", i))
    for j in range(n):
        graph.add_vertex(("b", j))
    for i in range(m):
        for j in range(n):
            graph.add_edge(("a", i), ("b", j))
    return graph
