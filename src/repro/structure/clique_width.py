"""Clique-width expressions (k-expressions) and dynamic programming over them.

Section 5.1 of the paper observes that its dichotomy needs the instance
family to be subinstance-closed: the class of cliques has unbounded treewidth
but *bounded clique-width*, so MSO model checking stays linear on it [15].
This module provides the clique-width substrate needed to exercise that
discussion:

* a small algebra of k-expressions -- create a labelled vertex, disjoint
  union, relabel, add all edges between two labels -- with evaluation to
  :class:`repro.structure.graph.Graph`;
* ready-made expressions of width 2 for cliques, complete bipartite graphs
  and cographs, and of width 3 for paths (whose treewidth is 1 but which make
  handy sanity checks);
* bottom-up dynamic programming over a k-expression for representative
  MSO-expressible tasks: edge counting, maximum independent set and
  independent-set counting (the same quantity the treewidth DP of
  :mod:`repro.counting.match_counting` computes, so the two substrates can be
  cross-checked).

The DP state spaces are exponential in the number of labels only, matching
the fixed-parameter tractability in clique-width that [15] establishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Mapping

from repro.errors import DecompositionError
from repro.structure.graph import Graph

Label = Hashable
Vertex = Any


@dataclass(frozen=True)
class CliqueWidthExpression:
    """A node of a k-expression.

    ``kind`` is one of ``create``, ``union``, ``relabel``, ``add_edges``;
    the remaining fields are used depending on the kind (see the constructor
    helpers below, which are the intended API).
    """

    kind: str
    label: Label | None = None
    vertex: Vertex | None = None
    children: tuple["CliqueWidthExpression", ...] = ()
    source_label: Label | None = None
    target_label: Label | None = None

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def create(label: Label, vertex: Vertex) -> "CliqueWidthExpression":
        """A single vertex carrying ``label``."""
        return CliqueWidthExpression("create", label=label, vertex=vertex)

    @staticmethod
    def union(
        left: "CliqueWidthExpression", right: "CliqueWidthExpression"
    ) -> "CliqueWidthExpression":
        """The disjoint union of two labelled graphs."""
        return CliqueWidthExpression("union", children=(left, right))

    @staticmethod
    def relabel(
        child: "CliqueWidthExpression", old: Label, new: Label
    ) -> "CliqueWidthExpression":
        """Rename every vertex labelled ``old`` to ``new``."""
        return CliqueWidthExpression("relabel", children=(child,), source_label=old, target_label=new)

    @staticmethod
    def add_edges(
        child: "CliqueWidthExpression", source: Label, target: Label
    ) -> "CliqueWidthExpression":
        """Add every edge between a ``source``-labelled and a ``target``-labelled vertex."""
        if source == target:
            raise DecompositionError("add_edges needs two distinct labels")
        return CliqueWidthExpression(
            "add_edges", children=(child,), source_label=source, target_label=target
        )

    # -- structure ----------------------------------------------------------------

    def subexpressions(self) -> Iterator["CliqueWidthExpression"]:
        """All nodes of the expression tree, children before parents.

        Iterative post-order: chain-shaped k-expressions (every ``relabel``/
        ``add_edges`` chain) are as deep as the graph is large.
        """
        stack: list[tuple["CliqueWidthExpression", bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
                continue
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))

    def labels(self) -> frozenset[Label]:
        """All labels mentioned anywhere in the expression."""
        used: set[Label] = set()
        for node in self.subexpressions():
            if node.kind == "create":
                used.add(node.label)
            elif node.kind == "relabel":
                used.update((node.source_label, node.target_label))
            elif node.kind == "add_edges":
                used.update((node.source_label, node.target_label))
        return frozenset(used)

    @property
    def width(self) -> int:
        """The number of distinct labels (the k of the k-expression)."""
        return len(self.labels())

    def size(self) -> int:
        """Number of operations in the expression."""
        return sum(1 for _ in self.subexpressions())

    @property
    def vertices(self) -> tuple[Vertex, ...]:
        """The vertices created anywhere in the expression (mirrors :class:`Graph`)."""
        return tuple(
            node.vertex for node in self.subexpressions() if node.kind == "create"
        )

    def validate(self) -> None:
        """Check well-formedness: distinct created vertices, known kinds."""
        seen: set[Vertex] = set()
        for node in self.subexpressions():
            if node.kind == "create":
                if node.vertex in seen:
                    raise DecompositionError(
                        f"vertex {node.vertex!r} is created twice in the k-expression"
                    )
                seen.add(node.vertex)
            elif node.kind == "union":
                if len(node.children) != 2:
                    raise DecompositionError("union nodes need exactly two children")
            elif node.kind in ("relabel", "add_edges"):
                if len(node.children) != 1:
                    raise DecompositionError(f"{node.kind} nodes need exactly one child")
            else:
                raise DecompositionError(f"unknown k-expression operation {node.kind!r}")

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self) -> tuple[Graph, dict[Vertex, Label]]:
        """The labelled graph denoted by the expression."""
        self.validate()
        graph, labelling = self._evaluate()
        return graph, labelling

    def _evaluate(self) -> tuple[Graph, dict[Vertex, Label]]:
        # Iterative post-order with a value stack: relabel/add_edges chains
        # are as deep as the graph is large, so the natural recursion would
        # overflow on deep expressions such as path_expression(2000).
        values: list[tuple[Graph, dict[Vertex, Label]]] = []
        stack: list[tuple["CliqueWidthExpression", bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if not expanded:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))
                continue
            if node.kind == "create":
                graph = Graph()
                graph.add_vertex(node.vertex)
                values.append((graph, {node.vertex: node.label}))
            elif node.kind == "union":
                right_graph, right_labels = values.pop()
                left_graph, left_labels = values.pop()
                shared = set(left_labels) & set(right_labels)
                if shared:
                    raise DecompositionError(
                        f"disjoint union reuses vertices {sorted(map(repr, shared))[:3]}"
                    )
                merged = left_graph.copy()
                for vertex in right_graph.vertices:
                    merged.add_vertex(vertex)
                for u, v in right_graph.edges():
                    merged.add_edge(u, v)
                values.append((merged, {**left_labels, **right_labels}))
            elif node.kind == "relabel":
                graph, labelling = values.pop()
                values.append(
                    (
                        graph,
                        {
                            vertex: (
                                node.target_label
                                if label == node.source_label
                                else label
                            )
                            for vertex, label in labelling.items()
                        },
                    )
                )
            else:
                # add_edges
                graph, labelling = values.pop()
                result = graph.copy()
                sources = [v for v, label in labelling.items() if label == node.source_label]
                targets = [v for v, label in labelling.items() if label == node.target_label]
                for u in sources:
                    for v in targets:
                        if u != v:
                            result.add_edge(u, v)
                values.append((result, labelling))
        return values.pop()

    def to_graph(self) -> Graph:
        return self.evaluate()[0]

    def __str__(self) -> str:
        if self.kind == "create":
            return f"{self.label}({self.vertex})"
        if self.kind == "union":
            return f"({self.children[0]} ⊕ {self.children[1]})"
        if self.kind == "relabel":
            return f"ρ_{self.source_label}→{self.target_label}({self.children[0]})"
        return f"η_{self.source_label},{self.target_label}({self.children[0]})"


# -- ready-made expressions -----------------------------------------------------------------


def clique_expression(n: int) -> CliqueWidthExpression:
    """A width-2 expression for the n-clique (the Section 5.1 counterexample family)."""
    if n <= 0:
        raise DecompositionError("a clique needs at least one vertex")
    expression = CliqueWidthExpression.create(1, "v0")
    for index in range(1, n):
        fresh = CliqueWidthExpression.create(2, f"v{index}")
        expression = CliqueWidthExpression.union(expression, fresh)
        expression = CliqueWidthExpression.add_edges(expression, 1, 2)
        expression = CliqueWidthExpression.relabel(expression, 2, 1)
    return expression


def complete_bipartite_expression(m: int, n: int) -> CliqueWidthExpression:
    """A width-2 expression for K_{m,n} (the Proposition 8.9 family)."""
    if m <= 0 or n <= 0:
        raise DecompositionError("both sides of a complete bipartite graph must be non-empty")
    left = CliqueWidthExpression.create(1, "l0")
    for index in range(1, m):
        left = CliqueWidthExpression.union(left, CliqueWidthExpression.create(1, f"l{index}"))
    right = CliqueWidthExpression.create(2, "r0")
    for index in range(1, n):
        right = CliqueWidthExpression.union(right, CliqueWidthExpression.create(2, f"r{index}"))
    together = CliqueWidthExpression.union(left, right)
    return CliqueWidthExpression.add_edges(together, 1, 2)


def path_expression(n: int) -> CliqueWidthExpression:
    """A width-3 expression for the n-vertex path (labels: done / frontier / fresh)."""
    if n <= 0:
        raise DecompositionError("a path needs at least one vertex")
    expression = CliqueWidthExpression.create(2, "v0")
    for index in range(1, n):
        fresh = CliqueWidthExpression.create(3, f"v{index}")
        expression = CliqueWidthExpression.union(expression, fresh)
        expression = CliqueWidthExpression.add_edges(expression, 2, 3)
        expression = CliqueWidthExpression.relabel(expression, 2, 1)
        expression = CliqueWidthExpression.relabel(expression, 3, 2)
    return expression


def cograph_expression(structure, prefix: str = "v") -> CliqueWidthExpression:
    """A width-2 expression for a cograph given as a nested cotree.

    The cotree is a nested structure: a leaf is any hashable vertex name, an
    internal node is ``("union", children)`` or ``("join", children)`` with
    ``children`` a sequence of cotrees.  Joins add all edges across their
    children, which is exactly what width-2 expressions can express.
    """
    counter = [0]

    # repro-analysis: allow(REC001): depth equals the caller-supplied cotree nesting, which mirrors the recursion already spent building that literal
    def build(node) -> CliqueWidthExpression:
        if isinstance(node, tuple) and len(node) == 2 and node[0] in ("union", "join"):
            operation, children = node
            if not children:
                raise DecompositionError("cotree nodes need at least one child")
            parts = [build(child) for child in children]
            expression = parts[0]
            for part in parts[1:]:
                # Keep the accumulated part on label 1 and the new part on label 2.
                relabelled = CliqueWidthExpression.relabel(part, 1, 2)
                expression = CliqueWidthExpression.union(expression, relabelled)
                if operation == "join":
                    expression = CliqueWidthExpression.add_edges(expression, 1, 2)
                expression = CliqueWidthExpression.relabel(expression, 2, 1)
            return expression
        counter[0] += 1
        return CliqueWidthExpression.create(1, f"{prefix}{counter[0]}_{node}")

    return build(structure)


# -- dynamic programming over k-expressions ----------------------------------------------------


def count_edges(expression: CliqueWidthExpression) -> int:
    """The number of edges of the denoted graph.

    ``add_edges`` operations may overlap (the same pair of label classes can
    be connected twice), so the count is read off the evaluated graph rather
    than accumulated per operation.
    """
    return expression.to_graph().edge_count()


def maximum_independent_set(expression: CliqueWidthExpression) -> int:
    """The maximum size of an independent set, by DP over the k-expression.

    The state of a subexpression maps each *label profile* -- the set of
    labels that contain at least one selected vertex -- to the maximum number
    of selected vertices achieving it.  ``add_edges(a, b)`` kills every
    profile containing both ``a`` and ``b``; ``union`` combines profiles
    additively; ``relabel`` merges profiles.  The state space is at most
    2^k per node, the fixed-parameter bound of [15].
    """
    expression.validate()
    states = _independent_set_states(expression, count_models=False)
    return max(states.values(), default=0)


def count_independent_sets(expression: CliqueWidthExpression) -> int:
    """The number of independent sets (including the empty one) of the denoted graph."""
    expression.validate()
    states = _independent_set_states(expression, count_models=True)
    return sum(states.values())


def _independent_set_states(
    expression: CliqueWidthExpression, count_models: bool
) -> dict[frozenset, int]:
    """Bottom-up DP: label profile of the selection -> best size or model count."""

    def combine(left: dict[frozenset, int], right: dict[frozenset, int]) -> dict[frozenset, int]:
        result: dict[frozenset, int] = {}
        for left_profile, left_value in left.items():
            for right_profile, right_value in right.items():
                profile = left_profile | right_profile
                value = left_value + right_value if not count_models else left_value * right_value
                if count_models:
                    result[profile] = result.get(profile, 0) + value
                else:
                    result[profile] = max(result.get(profile, -1), value)
        return result

    # Iterative post-order with a value stack: relabel/add_edges chains are as
    # deep as the graph is large, so the natural recursion would overflow.
    values: list[dict[frozenset, int]] = []
    stack: list[tuple[CliqueWidthExpression, bool]] = [(expression, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))
            continue
        if node.kind == "create":
            empty_value = 1 if count_models else 0
            values.append({frozenset(): empty_value, frozenset({node.label}): 1})
        elif node.kind == "union":
            right = values.pop()
            left = values.pop()
            values.append(combine(left, right))
        elif node.kind == "relabel":
            child_states = values.pop()
            result: dict[frozenset, int] = {}
            for profile, value in child_states.items():
                renamed = frozenset(
                    node.target_label if label == node.source_label else label
                    for label in profile
                )
                if count_models:
                    result[renamed] = result.get(renamed, 0) + value
                else:
                    result[renamed] = max(result.get(renamed, -1), value)
            values.append(result)
        else:
            # add_edges: selections touching both endpoint labels are no
            # longer independent.
            child_states = values.pop()
            values.append(
                {
                    profile: value
                    for profile, value in child_states.items()
                    if not (node.source_label in profile and node.target_label in profile)
                }
            )
    return values.pop()


def expression_from_graph(graph: Graph, max_width: int = 8) -> CliqueWidthExpression:
    """A (not necessarily optimal) k-expression for an arbitrary graph.

    Uses the trivial construction that gives every vertex its own label,
    unions them and adds the edges label-pair by label-pair: the width equals
    the number of vertices, so this is only useful for small graphs (as an
    exact reference for tests) and is rejected above ``max_width`` vertices.
    """
    vertices = list(graph.vertices)
    if not vertices:
        raise DecompositionError("cannot build a k-expression for the empty graph")
    if len(vertices) > max_width:
        raise DecompositionError(
            f"trivial k-expression would use {len(vertices)} labels (> {max_width})"
        )
    labels = {vertex: index + 1 for index, vertex in enumerate(vertices)}
    expression = CliqueWidthExpression.create(labels[vertices[0]], vertices[0])
    for vertex in vertices[1:]:
        expression = CliqueWidthExpression.union(
            expression, CliqueWidthExpression.create(labels[vertex], vertex)
        )
    for u, v in graph.edges():
        expression = CliqueWidthExpression.add_edges(expression, labels[u], labels[v])
    return expression
