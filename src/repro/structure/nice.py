"""Binary and nice tree decompositions.

The provenance constructions of Section 6 (tree encodings, tree automata) work
over *binary* decompositions where each node has at most two children and
where consecutive bags differ in a controlled way.  We provide:

* :func:`binarize` — turn an arbitrary rooted decomposition into one where
  every node has at most two children, without changing the width;
* :func:`make_nice` — the classical nice form with introduce / forget / join
  leaf nodes (bags differ by at most one vertex between parent and child).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.structure.tree_decomposition import BagId, TreeDecomposition


def binarize(decomposition: TreeDecomposition) -> TreeDecomposition:
    """A decomposition of the same width where every node has <= 2 children.

    A node with children c1..cm (m > 2) is replaced by a right-leaning chain
    of copies of its bag, each taking one child.
    """
    next_id = max(decomposition.bags) + 1
    bags = dict(decomposition.bags)
    children: dict[BagId, list[BagId]] = {node: list(kids) for node, kids in decomposition.children.items()}

    work = list(decomposition.nodes())
    for node in work:
        kids = children.get(node, [])
        while len(kids) > 2:
            overflow = kids[1:]
            helper = next_id
            next_id += 1
            bags[helper] = bags[node]
            children[helper] = overflow
            kids = [kids[0], helper]
            children[node] = kids
            node = helper
            kids = children[helper]
    return TreeDecomposition(bags=bags, children=children, root=decomposition.root).relabel()


class NiceNodeKind(Enum):
    """The kind of a node in a nice tree decomposition."""

    LEAF = "leaf"
    INTRODUCE = "introduce"
    FORGET = "forget"
    JOIN = "join"


@dataclass(frozen=True)
class NiceNode:
    """A node of a nice tree decomposition."""

    identifier: int
    kind: NiceNodeKind
    bag: frozenset
    children: tuple[int, ...]
    vertex: Any = None  # the introduced / forgotten vertex, when applicable


@dataclass
class NiceTreeDecomposition:
    """A nice tree decomposition: leaf / introduce / forget / join nodes."""

    nodes: dict[int, NiceNode]
    root: int

    @property
    def width(self) -> int:
        return max((len(node.bag) for node in self.nodes.values()), default=0) - 1

    def __len__(self) -> int:
        return len(self.nodes)

    def post_order(self) -> list[int]:
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
            else:
                stack.append((node, True))
                for kid in reversed(self.nodes[node].children):
                    stack.append((kid, False))
        return order

    def validate(self) -> None:
        """Sanity-check the introduce/forget/join structure."""
        from repro.errors import DecompositionError

        for node in self.nodes.values():
            kids = [self.nodes[c] for c in node.children]
            if node.kind is NiceNodeKind.LEAF:
                if kids or len(node.bag) > 1:
                    raise DecompositionError("leaf node must have no children and a bag of size <= 1")
            elif node.kind is NiceNodeKind.INTRODUCE:
                if len(kids) != 1 or node.bag != kids[0].bag | {node.vertex} or node.vertex in kids[0].bag:
                    raise DecompositionError("invalid introduce node")
            elif node.kind is NiceNodeKind.FORGET:
                if len(kids) != 1 or node.bag != kids[0].bag - {node.vertex} or node.vertex not in kids[0].bag:
                    raise DecompositionError("invalid forget node")
            elif node.kind is NiceNodeKind.JOIN:
                if len(kids) != 2 or any(kid.bag != node.bag for kid in kids):
                    raise DecompositionError("invalid join node")


def make_nice(decomposition: TreeDecomposition) -> NiceTreeDecomposition:
    """Convert a rooted tree decomposition into nice form (same width).

    The conversion walks the binarized tree iteratively (children before
    parents), so decompositions of arbitrary depth — e.g. from path-shaped
    instances — convert without touching the interpreter recursion limit.
    """
    binary = binarize(decomposition)
    nodes: dict[int, NiceNode] = {}
    counter = [0]

    def fresh() -> int:
        counter[0] += 1
        return counter[0] - 1

    def emit(kind: NiceNodeKind, bag: frozenset, children: tuple[int, ...], vertex: Any = None) -> int:
        identifier = fresh()
        nodes[identifier] = NiceNode(identifier, kind, bag, children, vertex)
        return identifier

    def chain(from_bag: frozenset, to_bag: frozenset, below: int) -> int:
        """Insert forget/introduce nodes turning ``from_bag`` (below) into ``to_bag``."""
        current_bag = from_bag
        current = below
        for vertex in sorted(from_bag - to_bag, key=_stable_key):
            current_bag = current_bag - {vertex}
            current = emit(NiceNodeKind.FORGET, current_bag, (current,), vertex)
        for vertex in sorted(to_bag - current_bag, key=_stable_key):
            current_bag = current_bag | {vertex}
            current = emit(NiceNodeKind.INTRODUCE, current_bag, (current,), vertex)
        return current

    def leaf_chain(bag: frozenset) -> int:
        ordered = sorted(bag, key=_stable_key)
        if not ordered:
            return emit(NiceNodeKind.LEAF, frozenset(), ())
        current = emit(NiceNodeKind.LEAF, frozenset({ordered[0]}), ())
        current_bag = frozenset({ordered[0]})
        for vertex in ordered[1:]:
            current_bag = current_bag | {vertex}
            current = emit(NiceNodeKind.INTRODUCE, current_bag, (current,), vertex)
        return current

    # Reversed pre-order visits every child before its parent.
    built: dict[BagId, int] = {}
    for node in reversed(binary.topological_order()):
        bag = binary.bags[node]
        kids = binary.children.get(node, [])
        if not kids:
            built[node] = leaf_chain(bag)
        elif len(kids) == 1:
            built[node] = chain(binary.bags[kids[0]], bag, built[kids[0]])
        else:
            left = chain(binary.bags[kids[0]], bag, built[kids[0]])
            right = chain(binary.bags[kids[1]], bag, built[kids[1]])
            built[node] = emit(NiceNodeKind.JOIN, bag, (left, right))

    # Forget every vertex of the root bag so the root has an empty bag.
    root = chain(binary.bags[binary.root], frozenset(), built[binary.root])
    nice = NiceTreeDecomposition(nodes=nodes, root=root)
    nice.validate()
    return nice


def _stable_key(vertex: Any) -> tuple[str, str]:
    return (type(vertex).__name__, repr(vertex))
