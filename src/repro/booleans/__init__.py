"""Lineage representations: circuits, formulas, OBDDs, FBDDs, d-DNNFs."""

from repro.booleans.circuit import BooleanCircuit, Gate, GateKind, circuit_from_function
from repro.booleans.dnnf import DNNF, DNNFNode, dnnf_from_obdd
from repro.booleans.fbdd import (
    FBDD,
    compile_circuit_to_fbdd,
    fbdd_from_clauses,
    fbdd_from_obdd,
)
from repro.booleans.formula import (
    Formula,
    circuit_to_formula,
    minimal_formula_size,
    parity_circuit,
    parity_formula,
    threshold_2_circuit,
    threshold_2_formula,
)
from repro.booleans.obdd import FALSE_NODE, OBDD, TRUE_NODE, minimal_obdd_width

__all__ = [
    "BooleanCircuit",
    "DNNF",
    "DNNFNode",
    "FALSE_NODE",
    "FBDD",
    "Formula",
    "Gate",
    "GateKind",
    "OBDD",
    "TRUE_NODE",
    "circuit_from_function",
    "circuit_to_formula",
    "compile_circuit_to_fbdd",
    "dnnf_from_obdd",
    "fbdd_from_clauses",
    "fbdd_from_obdd",
    "minimal_formula_size",
    "minimal_obdd_width",
    "parity_circuit",
    "parity_formula",
    "threshold_2_circuit",
    "threshold_2_formula",
]
