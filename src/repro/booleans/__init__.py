"""Lineage representations: circuits, formulas, OBDDs, FBDDs, d-DNNFs.

The compilation and evaluation hot paths are iterative, array-oriented
kernels: the trie-driven DNF compilation and fused topological sweep live in
:mod:`repro.booleans.obdd` (see :meth:`~repro.booleans.obdd.OBDD.sweep`);
the seed recursive algorithms are preserved as differential references in
:mod:`repro.booleans.reference`.
"""

from repro.booleans.circuit import BooleanCircuit, Gate, GateKind, circuit_from_function
from repro.booleans.dnnf import DNNF, DNNFNode, dnnf_from_obdd
from repro.booleans.fbdd import (
    FBDD,
    compile_circuit_to_fbdd,
    fbdd_from_clauses,
    fbdd_from_obdd,
)
from repro.booleans.formula import (
    Formula,
    circuit_to_formula,
    minimal_formula_size,
    parity_circuit,
    parity_formula,
    threshold_2_circuit,
    threshold_2_formula,
)
from repro.booleans.obdd import FALSE_NODE, OBDD, TRUE_NODE, SweepResult, minimal_obdd_width
from repro.booleans.reference import (
    build_from_clauses_fold,
    model_count_recursive,
    probability_recursive,
    width_by_cuts,
)

__all__ = [
    "BooleanCircuit",
    "DNNF",
    "DNNFNode",
    "FALSE_NODE",
    "FBDD",
    "Formula",
    "Gate",
    "GateKind",
    "OBDD",
    "SweepResult",
    "TRUE_NODE",
    "build_from_clauses_fold",
    "circuit_from_function",
    "circuit_to_formula",
    "compile_circuit_to_fbdd",
    "dnnf_from_obdd",
    "fbdd_from_clauses",
    "fbdd_from_obdd",
    "minimal_formula_size",
    "minimal_obdd_width",
    "model_count_recursive",
    "parity_circuit",
    "parity_formula",
    "probability_recursive",
    "threshold_2_circuit",
    "threshold_2_formula",
    "width_by_cuts",
]
