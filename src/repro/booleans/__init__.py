"""Lineage representations: circuits, formulas, OBDDs, FBDDs, d-DNNFs.

The compilation and evaluation hot paths are iterative, array-oriented
kernels: the trie-driven DNF compilation and fused topological sweep live in
:mod:`repro.booleans.obdd` (see :meth:`~repro.booleans.obdd.OBDD.sweep`);
the seed recursive algorithms are preserved as differential references in
:mod:`repro.booleans.reference`.  :mod:`repro.booleans.columnar` flattens a
reduced OBDD into structure-of-arrays ``(var, lo, hi)`` columns — the layout
the vectorized sweeps and the shared-memory transport run on.
"""

from repro.booleans.circuit import BooleanCircuit, Gate, GateKind, circuit_from_function
from repro.booleans.columnar import (
    ColumnarOBDD,
    array_backend,
    columnar_from_buffer,
    columnar_from_obdd,
)
from repro.booleans.dnnf import DNNF, DNNFNode, dnnf_from_obdd
from repro.booleans.fbdd import (
    FBDD,
    compile_circuit_to_fbdd,
    fbdd_from_clauses,
    fbdd_from_obdd,
)
from repro.booleans.formula import (
    Formula,
    circuit_to_formula,
    minimal_formula_size,
    parity_circuit,
    parity_formula,
    threshold_2_circuit,
    threshold_2_formula,
)
from repro.booleans.obdd import FALSE_NODE, OBDD, TRUE_NODE, SweepResult, minimal_obdd_width
from repro.booleans.reference import (
    build_from_clauses_fold,
    model_count_recursive,
    probability_recursive,
    width_by_cuts,
)

__all__ = [
    "BooleanCircuit",
    "ColumnarOBDD",
    "DNNF",
    "DNNFNode",
    "FALSE_NODE",
    "FBDD",
    "Formula",
    "Gate",
    "GateKind",
    "OBDD",
    "SweepResult",
    "TRUE_NODE",
    "array_backend",
    "build_from_clauses_fold",
    "circuit_from_function",
    "columnar_from_buffer",
    "columnar_from_obdd",
    "circuit_to_formula",
    "compile_circuit_to_fbdd",
    "dnnf_from_obdd",
    "fbdd_from_clauses",
    "fbdd_from_obdd",
    "minimal_formula_size",
    "minimal_obdd_width",
    "model_count_recursive",
    "parity_circuit",
    "parity_formula",
    "probability_recursive",
    "threshold_2_circuit",
    "threshold_2_formula",
    "width_by_cuts",
]
