"""Free Binary Decision Diagrams (FBDDs).

An FBDD (also called a read-once branching program) is a rooted DAG of
decision nodes in which every root-to-sink path tests each variable at most
once, but -- unlike an OBDD (Definition 6.4) -- different paths may test
variables in different orders.  FBDDs sit strictly between OBDDs and d-DNNFs
in the knowledge-compilation hierarchy: every OBDD is an FBDD, every FBDD
translates to a d-DNNF of linear size, and both probability evaluation and
model counting stay polynomial.

The paper's conclusion asks whether the OBDD dichotomy (Theorem 8.1) extends
to FBDDs and d-DNNFs; this module provides the FBDD machinery needed to
*explore* that question experimentally: construction from OBDDs, direct
compilation of Boolean circuits by Shannon expansion under a dynamic variable
choice, probability evaluation, model counting, and structural checks
(read-once validation, orderedness testing).

Terminal nodes are the integers ``0`` (false) and ``1`` (true), as in
:mod:`repro.booleans.obdd`.  Like the OBDD sweep kernel
(:meth:`repro.booleans.obdd.OBDD.sweep`), every measurement here is an
iterative pass over the reachable nodes in topological (ascending-id)
order, so diagram depth is bounded by memory, not the recursion limit.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from repro.errors import CompilationError, LineageError

FALSE_NODE = 0
TRUE_NODE = 1


class FBDD:
    """A reduced free binary decision diagram.

    The manager owns the node table; nodes are integers, with ``0`` and ``1``
    reserved for the terminals.  Decision nodes are hash-consed, and nodes
    with identical children are collapsed, so structurally identical
    subdiagrams are shared.

    Unlike :class:`repro.booleans.obdd.OBDD`, there is no global variable
    order; instead the *read-once* property (no variable tested twice on a
    path) is maintained by the construction methods and can be re-checked
    with :meth:`check_read_once`.

    Decision nodes are interned children-first, so ascending node ids are a
    topological order of the DAG; every measurement below is an iterative
    pass over the reachable ids in that order (no recursion, any depth).
    """

    def __init__(self) -> None:
        # node id -> (variable, low child, high child); ids 0/1 are terminals.
        self._nodes: list[tuple[Hashable, int, int]] = [
            (None, -1, -1),
            (None, -1, -1),
        ]
        self._unique: dict[tuple[Hashable, int, int], int] = {}
        self.root: int = FALSE_NODE

    # -- construction ----------------------------------------------------------

    def terminal(self, value: bool) -> int:
        return TRUE_NODE if value else FALSE_NODE

    def make_node(self, variable: Hashable, low: int, high: int) -> int:
        """The (hash-consed) decision node testing ``variable``.

        Nodes whose two children coincide are collapsed to the child, so the
        diagram stays reduced.
        """
        self._check_node(low)
        self._check_node(high)
        if low == high:
            return low
        key = (variable, low, high)
        node = self._unique.get(key)
        if node is None:
            self._nodes.append(key)
            node = len(self._nodes) - 1
            self._unique[key] = node
        return node

    def literal(self, variable: Hashable, positive: bool = True) -> int:
        if positive:
            return self.make_node(variable, FALSE_NODE, TRUE_NODE)
        return self.make_node(variable, TRUE_NODE, FALSE_NODE)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self._nodes):
            raise LineageError(f"FBDD node id {node} out of range")

    # -- accessors -------------------------------------------------------------

    def node(self, node_id: int) -> tuple[Hashable, int, int]:
        """The ``(variable, low, high)`` triple of a decision node."""
        self._check_node(node_id)
        if node_id <= TRUE_NODE:
            raise LineageError("terminals have no decision triple")
        return self._nodes[node_id]

    def is_terminal(self, node_id: int) -> bool:
        return node_id <= TRUE_NODE

    def reachable_nodes(self, node: int | None = None) -> set[int]:
        """Decision nodes reachable from ``node`` (default: the root)."""
        start = self.root if node is None else node
        seen: set[int] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            if current in seen or current <= TRUE_NODE:
                continue
            seen.add(current)
            _, low, high = self._nodes[current]
            stack.extend((low, high))
        return seen

    def _reachable_ascending(self, node: int | None = None) -> list[int]:
        """Reachable decision nodes in ascending id (= topological) order."""
        return sorted(self.reachable_nodes(node))

    def size(self, node: int | None = None) -> int:
        """Number of decision nodes reachable from ``node`` (terminals excluded)."""
        return len(self.reachable_nodes(node))

    def variables(self, node: int | None = None) -> frozenset:
        """The variables tested anywhere in the diagram rooted at ``node``."""
        return frozenset(
            self._nodes[n][0] for n in self.reachable_nodes(node)
        )

    def __len__(self) -> int:
        return len(self._nodes) - 2

    def __repr__(self) -> str:
        return f"FBDD({len(self)} decision nodes allocated)"

    # -- structural checks -----------------------------------------------------

    def check_read_once(self, node: int | None = None) -> bool:
        """True if no root-to-sink path tests the same variable twice.

        This is the defining property of FBDDs; the construction methods of
        this class preserve it, but diagrams assembled by hand with
        :meth:`make_node` may violate it.
        """
        start = self.root if node is None else node
        # It suffices that, for every reachable node v testing x, x is not
        # tested again anywhere strictly below v; the tested-below sets are
        # computed in one ascending (topological) pass.
        below = self._tested_below(start)
        for current in self.reachable_nodes(start):
            variable, low, high = self._nodes[current]
            if variable in below[low] or variable in below[high]:
                return False
        return True

    def _tested_below(self, start: int) -> dict[int, frozenset]:
        """Per reachable node, the set of variables tested at or below it."""
        below: dict[int, frozenset] = {FALSE_NODE: frozenset(), TRUE_NODE: frozenset()}
        for current in self._reachable_ascending(start):
            variable, low, high = self._nodes[current]
            below[current] = frozenset({variable}) | below[low] | below[high]
        return below

    def is_ordered(self, node: int | None = None) -> bool:
        """True if some global variable order is consistent with every path.

        An FBDD is *ordered* (i.e., it is an OBDD in disguise) when the
        precedence constraints "x is tested before y on some path" admit a
        linear extension; we collect all parent-before-descendant pairs and
        test the resulting precedence relation for acyclicity.
        """
        start = self.root if node is None else node
        below = self._tested_below(start)
        precedence: dict[Hashable, set[Hashable]] = {}
        for current in self.reachable_nodes(start):
            variable, low, high = self._nodes[current]
            successors = precedence.setdefault(variable, set())
            for child in (low, high):
                successors.update(below[child])
            successors.discard(variable)
        # Iterative cycle detection over the precedence relation.
        visiting: set[Hashable] = set()
        done: set[Hashable] = set()
        for origin in list(precedence):
            if origin in done:
                continue
            stack: list[tuple[Hashable, Iterator]] = [(origin, iter(precedence.get(origin, ())))]
            visiting.add(origin)
            while stack:
                variable, successors_iter = stack[-1]
                advanced = False
                for successor in successors_iter:
                    if successor in done:
                        continue
                    if successor in visiting:
                        return False
                    visiting.add(successor)
                    stack.append((successor, iter(precedence.get(successor, ()))))
                    advanced = True
                    break
                if not advanced:
                    visiting.discard(variable)
                    done.add(variable)
                    stack.pop()
        return True

    # -- semantics --------------------------------------------------------------

    def evaluate(self, valuation: Mapping[Hashable, bool], node: int | None = None) -> bool:
        current = self.root if node is None else node
        while current > TRUE_NODE:
            variable, low, high = self._nodes[current]
            current = high if valuation.get(variable, False) else low
        return current == TRUE_NODE

    def probability(
        self,
        probabilities: Mapping[Hashable, Fraction | float],
        node: int | None = None,
    ) -> Fraction:
        """Exact probability under independent variables (read-once => correct)."""
        start = self.root if node is None else node
        probs = {
            variable: value if isinstance(value, Fraction) else Fraction(value)
            for variable, value in probabilities.items()
        }
        values: dict[int, Fraction] = {FALSE_NODE: Fraction(0), TRUE_NODE: Fraction(1)}
        for current in self._reachable_ascending(start):
            variable, low, high = self._nodes[current]
            if variable not in probs:
                raise LineageError(f"missing probability for variable {variable!r}")
            p = probs[variable]
            values[current] = p * values[high] + (1 - p) * values[low]
        return values[start]

    def model_count(
        self,
        all_variables: Iterable[Hashable] | None = None,
        node: int | None = None,
    ) -> int:
        """Number of satisfying assignments over ``all_variables``.

        Defaults to the variables tested in the diagram.  Works because the
        read-once property makes the variable sets of the two children of any
        node disjoint from the tested variable, so counts can be normalised
        per node by the number of untested variables.
        """
        start = self.root if node is None else node
        tested = self.variables(start)
        if all_variables is None:
            universe = tested
        else:
            universe = frozenset(all_variables)
            if not tested <= universe:
                raise LineageError("diagram tests variables outside the given universe")
        # One ascending pass computes, per node, both its variable set and its
        # model count over exactly that set ("count" below).
        vars_below: dict[int, frozenset] = {FALSE_NODE: frozenset(), TRUE_NODE: frozenset()}
        counts: dict[int, int] = {FALSE_NODE: 0, TRUE_NODE: 1}
        for current in self._reachable_ascending(start):
            variable, low, high = self._nodes[current]
            here = frozenset({variable}) | vars_below[low] | vars_below[high]
            vars_below[current] = here
            low_models = counts[low] << (len(here) - 1 - len(vars_below[low]))
            high_models = counts[high] << (len(here) - 1 - len(vars_below[high]))
            counts[current] = low_models + high_models
        start_vars = vars_below.get(start, frozenset())
        return counts[start] << (len(universe) - len(start_vars))

    def restrict(self, node: int, variable: Hashable, value: bool) -> int:
        """The cofactor of ``node`` with ``variable`` fixed to ``value``."""
        mapping: dict[int, int] = {FALSE_NODE: FALSE_NODE, TRUE_NODE: TRUE_NODE}
        for current in self._reachable_ascending(node):
            tested, low, high = self._nodes[current]
            if tested == variable:
                mapping[current] = mapping[high] if value else mapping[low]
            else:
                mapping[current] = self.make_node(tested, mapping[low], mapping[high])
        return mapping[node]

    def negate(self, node: int | None = None) -> int:
        """The complement of the function (swap the terminals)."""
        start = self.root if node is None else node
        mapping: dict[int, int] = {FALSE_NODE: TRUE_NODE, TRUE_NODE: FALSE_NODE}
        for current in self._reachable_ascending(start):
            variable, low, high = self._nodes[current]
            mapping[current] = self.make_node(variable, mapping[low], mapping[high])
        return mapping[start]

    # -- conversions -------------------------------------------------------------

    def to_dnnf(self, node: int | None = None):
        """An equivalent d-DNNF (decision nodes become deterministic ORs)."""
        from repro.booleans.dnnf import DNNF

        start = self.root if node is None else node
        dnnf = DNNF()
        mapping: dict[int, int] = {
            FALSE_NODE: dnnf.constant(False),
            TRUE_NODE: dnnf.constant(True),
        }
        for current in self._reachable_ascending(start):
            variable, low, high = self._nodes[current]
            low_branch = dnnf.conjunction(
                [dnnf.literal(variable, positive=False), mapping[low]]
            )
            high_branch = dnnf.conjunction(
                [dnnf.literal(variable, positive=True), mapping[high]]
            )
            mapping[current] = dnnf.disjunction([low_branch, high_branch])
        dnnf.set_output(mapping[start])
        return dnnf

    def node_table(self, node: int | None = None) -> list[tuple[int, Hashable, int, int]]:
        """A readable dump of the reachable decision nodes."""
        start = self.root if node is None else node
        return [
            (current, *self._nodes[current])
            for current in sorted(self.reachable_nodes(start))
        ]


def fbdd_from_obdd(obdd, root: int) -> FBDD:
    """Copy an OBDD into a (necessarily ordered) FBDD.

    One iterative pass over the reachable OBDD nodes, deepest level first,
    so diagrams of any depth convert without recursion.
    """
    diagram = FBDD()
    order = obdd.variable_order
    mapping: dict[int, int] = {FALSE_NODE: FALSE_NODE, TRUE_NODE: TRUE_NODE}
    reachable = obdd._reachable_list(root)
    reachable.sort(key=lambda current: obdd._nodes[current][0], reverse=True)
    for node in reachable:
        level, low, high = obdd._nodes[node]
        mapping[node] = diagram.make_node(order[level], mapping[low], mapping[high])
    diagram.root = mapping[root]
    return diagram


def _most_constrained_variable(
    circuit,
    restriction: Mapping[Hashable, bool],
    allowed: frozenset | None = None,
) -> Hashable | None:
    """A dynamic branching heuristic: the free variable with the largest fan-out.

    When ``allowed`` is given, only those variables are considered (used by the
    adjacency-guided default order of :func:`compile_circuit_to_fbdd`).
    """
    from repro.booleans.circuit import GateKind

    variable_of_gate: dict[int, Hashable] = {}
    counts: dict[Hashable, int] = {}
    reachable = set(circuit.reachable_gates())
    for gate_id in reachable:
        gate = circuit.gate(gate_id)
        if gate.kind is not GateKind.VAR or gate.payload in restriction:
            continue
        if allowed is not None and gate.payload not in allowed:
            continue
        variable_of_gate[gate_id] = gate.payload
        counts[gate.payload] = counts.get(gate.payload, 0)
    for gate_id in reachable:
        gate = circuit.gate(gate_id)
        for source in gate.inputs:
            if source in variable_of_gate:
                counts[variable_of_gate[source]] += 1
    if not counts:
        return None
    # Deterministic tie-break on the repr of the variable.
    return min(counts, key=lambda name: (-counts[name], repr(name)))


def _variable_adjacency(circuit) -> dict[Hashable, set[Hashable]]:
    """Variables that share an immediate parent gate (e.g. a DNF clause)."""
    from repro.booleans.circuit import GateKind

    adjacency: dict[Hashable, set[Hashable]] = {}
    for _, gate in circuit.gates():
        siblings = [
            circuit.gate(source).payload
            for source in gate.inputs
            if circuit.gate(source).kind is GateKind.VAR
        ]
        for variable in siblings:
            adjacency.setdefault(variable, set()).update(
                other for other in siblings if other != variable
            )
    return adjacency


def _canonical_form(circuit) -> tuple:
    """A hashable structural fingerprint of a (pruned) circuit.

    Structurally identical circuits get identical fingerprints, which makes
    the fingerprint a *sound* cache key for Shannon-expansion compilation:
    merging structurally identical cofactors can never change the compiled
    function.
    """
    from repro.booleans.circuit import GateKind

    gates = []
    remap: dict[int, int] = {}
    for position, gate_id in enumerate(circuit.reachable_gates()):
        remap[gate_id] = position
        gate = circuit.gate(gate_id)
        payload = gate.payload if gate.kind in (GateKind.VAR, GateKind.CONST) else None
        gates.append((gate.kind.value, tuple(remap[i] for i in gate.inputs), payload))
    return (tuple(gates), remap.get(circuit.output))


def compile_circuit_to_fbdd(
    circuit,
    variable_choice: Callable[[Mapping[Hashable, bool], Sequence[Hashable]], Hashable] | None = None,
    max_nodes: int = 200_000,
) -> FBDD:
    """Compile a Boolean circuit to an FBDD by Shannon expansion.

    At each step a free variable is chosen (by ``variable_choice``, which
    receives the partial assignment and the live variables), the circuit is
    cofactored on it, and the two cofactors are compiled recursively.  The
    default choice prefers live variables adjacent (sharing a gate) to
    already-assigned ones, breaking ties by fan-out: on clause-structured
    circuits this sweeps contiguously through the clauses, which keeps the
    diagram small on path-like lineages.  The choice may depend on the partial
    assignment built so far, which is what makes the result a *free* (rather
    than ordered) BDD.  Structurally identical cofactors are merged, so the
    diagram is a DAG.

    This is exponential in the worst case (as it must be); ``max_nodes``
    bounds the work and a :class:`CompilationError` is raised beyond it.
    """
    from repro.booleans.circuit import GateKind

    if circuit.output is None:
        raise CompilationError("circuit has no output gate")
    diagram = FBDD()
    cache: dict[tuple, int] = {}
    adjacency = _variable_adjacency(circuit)

    def live_variables(sub) -> list[Hashable]:
        live: set[Hashable] = set()
        for gate_id in sub.reachable_gates():
            gate = sub.gate(gate_id)
            if gate.kind is GateKind.VAR:
                live.add(gate.payload)
        return sorted(live, key=lambda v: (type(v).__name__, repr(v)))

    def build(sub, assignment: dict[Hashable, bool]) -> int:
        if len(diagram) > max_nodes:
            raise CompilationError("FBDD compilation exceeded the node budget")
        sub = sub.pruned()
        live = live_variables(sub)
        if not live:
            return diagram.terminal(sub.evaluate({}))
        key = _canonical_form(sub)
        if key in cache:
            return cache[key]
        if variable_choice is None:
            near_assigned = frozenset(
                variable
                for variable in live
                if any(neighbor in assignment for neighbor in adjacency.get(variable, ()))
            )
            branch_on = _most_constrained_variable(sub, {}, allowed=near_assigned or None)
        else:
            branch_on = variable_choice(dict(assignment), live)
        if branch_on not in set(live):
            raise CompilationError("variable choice must return a live variable")
        low = build(sub.restrict({branch_on: False}), {**assignment, branch_on: False})
        high = build(sub.restrict({branch_on: True}), {**assignment, branch_on: True})
        node = diagram.make_node(branch_on, low, high)
        cache[key] = node
        return node

    diagram.root = build(circuit, {})
    return diagram


def fbdd_from_clauses(clauses: Iterable[Iterable[Hashable]]) -> FBDD:
    """Compile a monotone DNF (an iterable of variable sets) into an FBDD.

    Convenience wrapper: the DNF is turned into a circuit and compiled by
    Shannon expansion.
    """
    from repro.booleans.circuit import BooleanCircuit

    circuit = BooleanCircuit()
    terms = []
    for clause in clauses:
        terms.append(circuit.conjunction([circuit.variable(v) for v in clause]))
    circuit.set_output(circuit.disjunction(terms))
    return compile_circuit_to_fbdd(circuit)
