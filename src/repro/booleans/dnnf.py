"""Deterministic decomposable negation normal forms (d-DNNFs), Definition 6.10.

A d-DNNF is a Boolean circuit where negation is applied only to inputs, the
inputs of every AND gate depend on disjoint variables (decomposability), and
the inputs of every OR gate are mutually exclusive (determinism).  Probability
evaluation and (weighted) model counting are linear in a d-DNNF.

We provide:

* a :class:`DNNF` circuit class with structural checks for decomposability and
  (semantic, exhaustive) determinism checks for testing;
* linear-time probability evaluation and model counting assuming *smoothness
  is not required*: probabilities are computed compositionally, and model
  counts account for unmentioned variables explicitly;
* conversion from OBDDs (an OBDD is an FBDD, which converts node-by-node);
* conversion to a plain :class:`BooleanCircuit`.

Node ids are created children-before-parents, so ascending id order is a
topological order: every semantic walk (evaluation, probability, model
counting) is a single iterative pass over the reachable node array — the
d-DNNF face of the sweep kernel of :mod:`repro.booleans.obdd` — and depth is
never limited by the interpreter recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Iterable, Mapping, Sequence

from repro.booleans.circuit import BooleanCircuit
from repro.errors import LineageError


@dataclass(frozen=True, slots=True)
class DNNFNode:
    """A node of a d-DNNF: 'lit' (payload = (variable, polarity)), 'const',
    'and', or 'or'."""

    kind: str
    children: tuple[int, ...]
    payload: object = None


class DNNF:
    """A d-DNNF circuit with an output node.

    Nodes are created through ``literal`` / ``constant`` / ``conjunction`` /
    ``disjunction`` and are checked for decomposability at construction time.
    Determinism of OR gates is the caller's responsibility (it is a semantic
    property); the constructions in :mod:`repro.provenance` guarantee it, and
    :meth:`check_determinism` verifies it exhaustively for testing.

    Per-node variable sets are stored **interval-compressed**: variables get
    dense integer ids in first-literal order, and each node keeps a sorted
    tuple of disjoint ``(low, high)`` id ranges.  On the structured circuits
    the provenance constructions build (a subtree's facts occupy a contiguous
    id range), every gate carries O(1) intervals, so construction-time
    decomposability checking is constant work per gate instead of a variable-
    set union proportional to the subtree — the eager frozensets of the seed
    made circuit construction quadratic in both time and memory on
    path-shaped encodings.
    """

    def __init__(self) -> None:
        self._nodes: list[DNNFNode] = []
        # Per node: sorted, disjoint, coalesced (low, high) variable-id ranges.
        self._intervals: list[tuple[tuple[int, int], ...]] = []
        self._variable_ids: dict[Hashable, int] = {}
        self._id_variables: list[Hashable] = []
        self.output: int | None = None

    # -- construction -----------------------------------------------------------

    def _add(self, node: DNNFNode, intervals: tuple[tuple[int, int], ...]) -> int:
        self._nodes.append(node)
        self._intervals.append(intervals)
        return len(self._nodes) - 1

    def literal(self, variable: Hashable, positive: bool = True) -> int:
        identifier = self._variable_ids.get(variable)
        if identifier is None:
            identifier = len(self._id_variables)
            self._variable_ids[variable] = identifier
            self._id_variables.append(variable)
        return self._add(
            DNNFNode("lit", (), (variable, bool(positive))), ((identifier, identifier),)
        )

    def constant(self, value: bool) -> int:
        return self._add(DNNFNode("const", (), bool(value)), ())

    def _merged_intervals(
        self, children: Sequence[int], require_disjoint: bool
    ) -> tuple[tuple[int, int], ...] | None:
        """Union of the children's id ranges; None on overlap when disjointness
        is required.  Adjacent ranges coalesce, keeping the tuples short."""
        ranges = [r for child in children for r in self._intervals[child]]
        if len(ranges) <= 1:
            return tuple(ranges)
        ranges.sort()
        merged = [ranges[0]]
        for low, high in ranges[1:]:
            last_low, last_high = merged[-1]
            if low <= last_high:
                if require_disjoint:
                    return None
                merged[-1] = (last_low, max(last_high, high))
            elif low == last_high + 1:
                merged[-1] = (last_low, max(last_high, high))
            else:
                merged.append((low, high))
        return tuple(merged)

    def conjunction(self, children: Sequence[int]) -> int:
        children = tuple(children)
        if not children:
            return self.constant(True)
        if len(children) == 1:
            return children[0]
        merged = self._merged_intervals(children, require_disjoint=True)
        if merged is None:
            raise LineageError(
                "AND children share variables; the node would not be decomposable"
            )
        return self._add(DNNFNode("and", children), merged)

    def disjunction(self, children: Sequence[int]) -> int:
        children = tuple(children)
        if not children:
            return self.constant(False)
        if len(children) == 1:
            return children[0]
        merged = self._merged_intervals(children, require_disjoint=False)
        return self._add(DNNFNode("or", children), merged)

    def set_output(self, node: int) -> None:
        if not 0 <= node < len(self._nodes):
            raise LineageError(f"node id {node} out of range")
        self.output = node

    # -- accessors ---------------------------------------------------------------

    def node(self, node_id: int) -> DNNFNode:
        return self._nodes[node_id]

    def variables_of(self, node_id: int) -> frozenset:
        return frozenset(
            self._id_variables[identifier]
            for low, high in self._intervals[node_id]
            for identifier in range(low, high + 1)
        )

    @property
    def size(self) -> int:
        """Total number of nodes."""
        return len(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return sum(len(node.children) for node in self._nodes)

    def variables(self) -> frozenset:
        if self.output is None:
            raise LineageError("d-DNNF has no output")
        return self.variables_of(self.output)

    def _reachable_from(self, root: int) -> list[int]:
        """Reachable node ids in ascending (= topological) order."""
        seen: set[int] = set()
        stack = [root]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._nodes[current].children)
        return sorted(seen)

    def reachable(self) -> list[int]:
        if self.output is None:
            raise LineageError("d-DNNF has no output")
        return self._reachable_from(self.output)

    def __repr__(self) -> str:
        return f"DNNF({len(self)} nodes)"

    # -- semantics ----------------------------------------------------------------

    def evaluate(self, valuation: Mapping[Hashable, bool], node: int | None = None) -> bool:
        """Evaluate under a (possibly partial) valuation, demand-driven.

        Children are examined left to right and only as far as needed, like
        the short-circuiting ``all``/``any`` of the recursive original —
        literals the outcome never depends on may be absent from
        ``valuation`` — but on an explicit stack, so depth is unbounded.
        """
        root = self.output if node is None else node
        if root is None:
            raise LineageError("d-DNNF has no output")
        values: dict[int, bool] = {}
        stack = [root]
        while stack:
            current = stack[-1]
            if current in values:
                stack.pop()
                continue
            data = self._nodes[current]
            if data.kind == "lit":
                variable, positive = data.payload
                value = bool(valuation[variable])
                values[current] = value if positive else not value
                stack.pop()
                continue
            if data.kind == "const":
                values[current] = bool(data.payload)
                stack.pop()
                continue
            # AND stops at the first False child, OR at the first True one;
            # an unknown child encountered first must be evaluated before
            # looking any further (left-to-right demand order).
            deciding = data.kind != "and"
            result: bool | None = None
            pending: int | None = None
            for child in data.children:
                known = values.get(child)
                if known is None:
                    pending = child
                    break
                if known == deciding:
                    result = deciding
                    break
            if result is None and pending is not None:
                stack.append(pending)
                continue
            values[current] = deciding if result is not None else not deciding
            stack.pop()
        return values[root]

    def _probability_sweep(
        self, probs: Mapping[Hashable, Fraction | float], exact: bool
    ) -> Fraction | float:
        """One iterative pass computing the probability of the output node."""
        one = Fraction(1) if exact else 1.0
        zero = Fraction(0) if exact else 0.0
        values: dict[int, Fraction | float] = {}
        for current in self.reachable():
            data = self._nodes[current]
            if data.kind == "lit":
                variable, positive = data.payload
                p = probs[variable]
                values[current] = p if positive else 1 - p
            elif data.kind == "const":
                values[current] = one if data.payload else zero
            elif data.kind == "and":
                result = one
                for child in data.children:
                    result *= values[child]
                values[current] = result
            else:
                result = zero
                for child in data.children:
                    result += values[child]
                values[current] = result
        return values[self.output]

    def probability(self, probabilities: Mapping[Hashable, Fraction | float]) -> Fraction:
        """Exact probability under independent variables (linear time).

        Correctness relies on decomposability (checked structurally) and
        determinism of OR nodes (guaranteed by our constructions).
        """
        if self.output is None:
            raise LineageError("d-DNNF has no output")
        probs = {v: p if isinstance(p, Fraction) else Fraction(p) for v, p in probabilities.items()}
        missing = self.variables() - set(probs)
        if missing:
            raise LineageError(f"missing probabilities for {sorted(map(repr, missing))[:3]}")
        result = self._probability_sweep(probs, exact=True)
        if not 0 <= result <= 1:
            raise LineageError(
                "probability outside [0, 1]; the circuit is not deterministic/decomposable"
            )
        return result

    def probability_float(self, probabilities: Mapping[Hashable, Fraction | float]) -> float:
        """The float fast path: one float sweep, exact fallback on degeneracy."""
        import math

        if self.output is None:
            raise LineageError("d-DNNF has no output")
        probs = {v: float(p) for v, p in probabilities.items()}
        missing = self.variables() - set(probs)
        if missing:
            raise LineageError(f"missing probabilities for {sorted(map(repr, missing))[:3]}")
        result = self._probability_sweep(probs, exact=False)
        if not (math.isfinite(result) and -1e-9 <= result <= 1 + 1e-9):
            return float(self.probability(probabilities))
        # Sub-tolerance float rounding: keep the reported value inside [0, 1].
        return min(max(result, 0.0), 1.0)

    def model_count(self, all_variables: Iterable[Hashable] | None = None) -> int:
        """Number of satisfying assignments over ``all_variables``.

        Defaults to the variables mentioned by the circuit.  Unmentioned
        variables double the count.
        """
        variables = set(all_variables) if all_variables is not None else set(self.variables())
        extra = variables - set(self.variables())
        probability = self.probability({v: Fraction(1, 2) for v in self.variables()})
        count = probability * (1 << len(self.variables()))
        if count.denominator != 1:
            raise LineageError("non-integer model count; determinism is violated")
        return int(count) << len(extra)

    # -- verification ---------------------------------------------------------------

    def check_decomposability(self) -> bool:
        """Re-verify decomposability of every reachable AND node."""
        for node_id in self.reachable():
            data = self._nodes[node_id]
            if data.kind != "and":
                continue
            if self._merged_intervals(data.children, require_disjoint=True) is None:
                return False
        return True

    def check_determinism(self, max_variables: int = 16) -> bool:
        """Exhaustively verify that OR children are mutually exclusive (testing only)."""
        names = sorted(self.variables(), key=lambda v: (type(v).__name__, repr(v)))
        if len(names) > max_variables:
            raise LineageError("too many variables for exhaustive determinism check")
        for mask in range(1 << len(names)):
            valuation = {name: bool(mask >> i & 1) for i, name in enumerate(names)}
            for node_id in self.reachable():
                data = self._nodes[node_id]
                if data.kind != "or":
                    continue
                true_children = [c for c in data.children if self.evaluate(valuation, c)]
                if len(true_children) > 1:
                    return False
        return True

    # -- conversions -----------------------------------------------------------------

    def to_circuit(self) -> BooleanCircuit:
        circuit = BooleanCircuit()
        mapping: dict[int, int] = {}
        for node_id in range(len(self._nodes)):
            data = self._nodes[node_id]
            if data.kind == "lit":
                variable, positive = data.payload
                gate = circuit.variable(variable)
                mapping[node_id] = gate if positive else circuit.negation(gate)
            elif data.kind == "const":
                mapping[node_id] = circuit.constant(bool(data.payload))
            elif data.kind == "and":
                mapping[node_id] = circuit.conjunction([mapping[c] for c in data.children])
            else:
                mapping[node_id] = circuit.disjunction([mapping[c] for c in data.children])
        if self.output is not None:
            circuit.set_output(mapping[self.output])
        return circuit


def dnnf_from_obdd(obdd, root: int) -> DNNF:
    """Convert an OBDD into a d-DNNF of proportional size.

    Each decision node on variable x with children (low, high) becomes
    ``(x AND high') OR (NOT x AND low')``: the OR is deterministic because the
    two disjuncts disagree on x, and the ANDs are decomposable because x does
    not occur below itself in an ordered BDD.  The conversion is a single
    iterative pass over the reachable OBDD nodes, deepest level first, so
    diagrams of any depth convert without recursion.
    """
    from repro.booleans.obdd import FALSE_NODE, TRUE_NODE

    dnnf = DNNF()
    if root == FALSE_NODE:
        dnnf.set_output(dnnf.constant(False))
        return dnnf
    if root == TRUE_NODE:
        dnnf.set_output(dnnf.constant(True))
        return dnnf

    reachable = obdd._reachable_list(root)
    reachable.sort(key=lambda current: obdd._nodes[current][0], reverse=True)
    false_id = dnnf.constant(False)
    true_id = dnnf.constant(True)
    mapping: dict[int, int] = {FALSE_NODE: false_id, TRUE_NODE: true_id}
    for current in reachable:
        level, low, high = obdd._nodes[current]
        variable = obdd.variable_order[level]
        positive = (
            dnnf.conjunction([dnnf.literal(variable, True), mapping[high]])
            if high != FALSE_NODE
            else false_id
        )
        negative = (
            dnnf.conjunction([dnnf.literal(variable, False), mapping[low]])
            if low != FALSE_NODE
            else false_id
        )
        mapping[current] = dnnf.disjunction([positive, negative])
    dnnf.set_output(mapping[root])
    return dnnf
