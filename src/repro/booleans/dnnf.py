"""Deterministic decomposable negation normal forms (d-DNNFs), Definition 6.10.

A d-DNNF is a Boolean circuit where negation is applied only to inputs, the
inputs of every AND gate depend on disjoint variables (decomposability), and
the inputs of every OR gate are mutually exclusive (determinism).  Probability
evaluation and (weighted) model counting are linear in a d-DNNF.

We provide:

* a :class:`DNNF` circuit class with structural checks for decomposability and
  (semantic, exhaustive) determinism checks for testing;
* linear-time probability evaluation and model counting assuming *smoothness
  is not required*: probabilities are computed compositionally, and model
  counts account for unmentioned variables explicitly;
* conversion from OBDDs (an OBDD is an FBDD, which converts node-by-node);
* conversion to a plain :class:`BooleanCircuit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Iterable, Mapping, Sequence

from repro.booleans.circuit import BooleanCircuit
from repro.errors import LineageError


@dataclass(frozen=True)
class DNNFNode:
    """A node of a d-DNNF: 'lit' (payload = (variable, polarity)), 'const',
    'and', or 'or'."""

    kind: str
    children: tuple[int, ...]
    payload: object = None


class DNNF:
    """A d-DNNF circuit with an output node.

    Nodes are created through ``literal`` / ``constant`` / ``conjunction`` /
    ``disjunction`` and are checked for decomposability at construction time
    (each node caches the set of variables it depends on).  Determinism of OR
    gates is the caller's responsibility (it is a semantic property); the
    constructions in :mod:`repro.provenance` guarantee it, and
    :meth:`check_determinism` verifies it exhaustively for testing.
    """

    def __init__(self) -> None:
        self._nodes: list[DNNFNode] = []
        self._variables: list[frozenset] = []  # per node: variables it depends on
        self.output: int | None = None

    # -- construction -----------------------------------------------------------

    def _add(self, node: DNNFNode, variables: frozenset) -> int:
        self._nodes.append(node)
        self._variables.append(variables)
        return len(self._nodes) - 1

    def literal(self, variable: Hashable, positive: bool = True) -> int:
        return self._add(DNNFNode("lit", (), (variable, bool(positive))), frozenset({variable}))

    def constant(self, value: bool) -> int:
        return self._add(DNNFNode("const", (), bool(value)), frozenset())

    def conjunction(self, children: Sequence[int]) -> int:
        children = tuple(children)
        if not children:
            return self.constant(True)
        if len(children) == 1:
            return children[0]
        union: set = set()
        for child in children:
            child_vars = self._variables[child]
            if union & child_vars:
                raise LineageError(
                    "AND children share variables; the node would not be decomposable"
                )
            union |= child_vars
        return self._add(DNNFNode("and", children), frozenset(union))

    def disjunction(self, children: Sequence[int]) -> int:
        children = tuple(children)
        if not children:
            return self.constant(False)
        if len(children) == 1:
            return children[0]
        union: set = set()
        for child in children:
            union |= self._variables[child]
        return self._add(DNNFNode("or", children), frozenset(union))

    def set_output(self, node: int) -> None:
        if not 0 <= node < len(self._nodes):
            raise LineageError(f"node id {node} out of range")
        self.output = node

    # -- accessors ---------------------------------------------------------------

    def node(self, node_id: int) -> DNNFNode:
        return self._nodes[node_id]

    def variables_of(self, node_id: int) -> frozenset:
        return self._variables[node_id]

    @property
    def size(self) -> int:
        """Total number of nodes."""
        return len(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return sum(len(node.children) for node in self._nodes)

    def variables(self) -> frozenset:
        if self.output is None:
            raise LineageError("d-DNNF has no output")
        return self._variables[self.output]

    def reachable(self) -> list[int]:
        if self.output is None:
            raise LineageError("d-DNNF has no output")
        seen: set[int] = set()
        stack = [self.output]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._nodes[current].children)
        return sorted(seen)

    def __repr__(self) -> str:
        return f"DNNF({len(self)} nodes)"

    # -- semantics ----------------------------------------------------------------

    def evaluate(self, valuation: Mapping[Hashable, bool], node: int | None = None) -> bool:
        root = self.output if node is None else node
        if root is None:
            raise LineageError("d-DNNF has no output")
        cache: dict[int, bool] = {}

        def walk(current: int) -> bool:
            if current in cache:
                return cache[current]
            data = self._nodes[current]
            if data.kind == "lit":
                variable, positive = data.payload
                value = bool(valuation[variable])
                result = value if positive else not value
            elif data.kind == "const":
                result = bool(data.payload)
            elif data.kind == "and":
                result = all(walk(child) for child in data.children)
            else:
                result = any(walk(child) for child in data.children)
            cache[current] = result
            return result

        return walk(root)

    def probability(self, probabilities: Mapping[Hashable, Fraction | float]) -> Fraction:
        """Exact probability under independent variables (linear time).

        Correctness relies on decomposability (checked structurally) and
        determinism of OR nodes (guaranteed by our constructions).
        """
        if self.output is None:
            raise LineageError("d-DNNF has no output")
        probs = {v: p if isinstance(p, Fraction) else Fraction(p) for v, p in probabilities.items()}
        missing = self.variables() - set(probs)
        if missing:
            raise LineageError(f"missing probabilities for {sorted(map(repr, missing))[:3]}")
        cache: dict[int, Fraction] = {}

        def walk(current: int) -> Fraction:
            if current in cache:
                return cache[current]
            data = self._nodes[current]
            if data.kind == "lit":
                variable, positive = data.payload
                result = probs[variable] if positive else 1 - probs[variable]
            elif data.kind == "const":
                result = Fraction(1) if data.payload else Fraction(0)
            elif data.kind == "and":
                result = Fraction(1)
                for child in data.children:
                    result *= walk(child)
            else:
                result = Fraction(0)
                for child in data.children:
                    result += walk(child)
            cache[current] = result
            return result

        result = walk(self.output)
        if not 0 <= result <= 1:
            raise LineageError(
                "probability outside [0, 1]; the circuit is not deterministic/decomposable"
            )
        return result

    def model_count(self, all_variables: Iterable[Hashable] | None = None) -> int:
        """Number of satisfying assignments over ``all_variables``.

        Defaults to the variables mentioned by the circuit.  Unmentioned
        variables double the count.
        """
        variables = set(all_variables) if all_variables is not None else set(self.variables())
        extra = variables - set(self.variables())
        probability = self.probability({v: Fraction(1, 2) for v in self.variables()})
        count = probability * (1 << len(self.variables()))
        if count.denominator != 1:
            raise LineageError("non-integer model count; determinism is violated")
        return int(count) << len(extra)

    # -- verification ---------------------------------------------------------------

    def check_decomposability(self) -> bool:
        """Re-verify decomposability of every reachable AND node."""
        for node_id in self.reachable():
            data = self._nodes[node_id]
            if data.kind != "and":
                continue
            union: set = set()
            for child in data.children:
                child_vars = self._variables[child]
                if union & child_vars:
                    return False
                union |= child_vars
        return True

    def check_determinism(self, max_variables: int = 16) -> bool:
        """Exhaustively verify that OR children are mutually exclusive (testing only)."""
        names = sorted(self.variables(), key=repr)
        if len(names) > max_variables:
            raise LineageError("too many variables for exhaustive determinism check")
        for mask in range(1 << len(names)):
            valuation = {name: bool(mask >> i & 1) for i, name in enumerate(names)}
            for node_id in self.reachable():
                data = self._nodes[node_id]
                if data.kind != "or":
                    continue
                true_children = [c for c in data.children if self.evaluate(valuation, c)]
                if len(true_children) > 1:
                    return False
        return True

    # -- conversions -----------------------------------------------------------------

    def to_circuit(self) -> BooleanCircuit:
        circuit = BooleanCircuit()
        mapping: dict[int, int] = {}
        for node_id in range(len(self._nodes)):
            data = self._nodes[node_id]
            if data.kind == "lit":
                variable, positive = data.payload
                gate = circuit.variable(variable)
                mapping[node_id] = gate if positive else circuit.negation(gate)
            elif data.kind == "const":
                mapping[node_id] = circuit.constant(bool(data.payload))
            elif data.kind == "and":
                mapping[node_id] = circuit.conjunction([mapping[c] for c in data.children])
            else:
                mapping[node_id] = circuit.disjunction([mapping[c] for c in data.children])
        if self.output is not None:
            circuit.set_output(mapping[self.output])
        return circuit


def dnnf_from_obdd(obdd, root: int) -> DNNF:
    """Convert an OBDD into a d-DNNF of proportional size.

    Each decision node on variable x with children (low, high) becomes
    ``(x AND high') OR (NOT x AND low')``: the OR is deterministic because the
    two disjuncts disagree on x, and the ANDs are decomposable because x does
    not occur below itself in an ordered BDD.
    """
    from repro.booleans.obdd import FALSE_NODE, TRUE_NODE

    dnnf = DNNF()
    cache: dict[int, int] = {}

    def convert(node: int) -> int:
        if node == FALSE_NODE:
            return dnnf.constant(False)
        if node == TRUE_NODE:
            return dnnf.constant(True)
        if node in cache:
            return cache[node]
        level, low, high = obdd._nodes[node]
        variable = obdd.variable_order[level]
        low_node = convert(low)
        high_node = convert(high)
        positive = dnnf.conjunction([dnnf.literal(variable, True), high_node]) if high != FALSE_NODE else dnnf.constant(False)
        negative = dnnf.conjunction([dnnf.literal(variable, False), low_node]) if low != FALSE_NODE else dnnf.constant(False)
        result = dnnf.disjunction([positive, negative])
        cache[node] = result
        return result

    dnnf.set_output(convert(root))
    return dnnf
