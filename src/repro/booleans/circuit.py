"""Boolean circuits (lineage circuits, Definition 6.2).

A circuit is a DAG of gates: variable inputs, constants, NOT, AND, OR (AND/OR
gates may have any number of inputs).  Circuits are the most general lineage
representation we use; the treewidth of a circuit (the treewidth of its
underlying graph) governs the OBDD compilation of Section 6.

Gates are identified by integer ids; the circuit designates one output gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from repro.errors import LineageError


class GateKind(Enum):
    VAR = "var"
    CONST = "const"
    NOT = "not"
    AND = "and"
    OR = "or"


@dataclass(frozen=True, slots=True)
class Gate:
    """A single gate: its kind, inputs (gate ids), and payload.

    ``payload`` is the variable name for VAR gates and the Boolean value for
    CONST gates; it is ``None`` otherwise (``__slots__`` keeps the per-gate
    footprint small on large lineage circuits).
    """

    kind: GateKind
    inputs: tuple[int, ...]
    payload: Any = None


class BooleanCircuit:
    """A Boolean circuit over named variables.

    The circuit is built incrementally through ``variable`` / ``constant`` /
    ``negation`` / ``conjunction`` / ``disjunction`` and then sealed by setting
    ``output``.  Identical VAR and CONST gates are shared automatically.
    """

    def __init__(self) -> None:
        self._gates: list[Gate] = []
        self._var_gate: dict[Hashable, int] = {}
        self._const_gate: dict[bool, int] = {}
        self.output: int | None = None

    # -- construction ---------------------------------------------------------

    def _add(self, gate: Gate) -> int:
        self._gates.append(gate)
        return len(self._gates) - 1

    def variable(self, name: Hashable) -> int:
        """The (shared) input gate for a variable."""
        if name not in self._var_gate:
            self._var_gate[name] = self._add(Gate(GateKind.VAR, (), name))
        return self._var_gate[name]

    def constant(self, value: bool) -> int:
        value = bool(value)
        if value not in self._const_gate:
            self._const_gate[value] = self._add(Gate(GateKind.CONST, (), value))
        return self._const_gate[value]

    def negation(self, gate: int) -> int:
        self._check_gate(gate)
        return self._add(Gate(GateKind.NOT, (gate,)))

    def conjunction(self, inputs: Sequence[int]) -> int:
        inputs = tuple(inputs)
        for g in inputs:
            self._check_gate(g)
        if not inputs:
            return self.constant(True)
        if len(inputs) == 1:
            return inputs[0]
        return self._add(Gate(GateKind.AND, inputs))

    def disjunction(self, inputs: Sequence[int]) -> int:
        inputs = tuple(inputs)
        for g in inputs:
            self._check_gate(g)
        if not inputs:
            return self.constant(False)
        if len(inputs) == 1:
            return inputs[0]
        return self._add(Gate(GateKind.OR, inputs))

    def set_output(self, gate: int) -> None:
        self._check_gate(gate)
        self.output = gate

    def _check_gate(self, gate: int) -> None:
        if not 0 <= gate < len(self._gates):
            raise LineageError(f"gate id {gate} out of range")

    # -- accessors ------------------------------------------------------------

    def gate(self, gate_id: int) -> Gate:
        return self._gates[gate_id]

    def gates(self) -> Iterator[tuple[int, Gate]]:
        return iter(enumerate(self._gates))

    def __len__(self) -> int:
        """Number of gates (the circuit's size)."""
        return len(self._gates)

    @property
    def size(self) -> int:
        return len(self._gates)

    def wire_count(self) -> int:
        return sum(len(g.inputs) for g in self._gates)

    def variables(self) -> tuple[Hashable, ...]:
        """All variable names, in insertion order."""
        return tuple(self._var_gate)

    def __repr__(self) -> str:
        return f"BooleanCircuit({len(self)} gates, {len(self._var_gate)} variables)"

    # -- semantics ------------------------------------------------------------

    def evaluate(self, valuation: Mapping[Hashable, bool]) -> bool:
        """Evaluate the circuit under a total valuation of its variables."""
        if self.output is None:
            raise LineageError("circuit has no output gate")
        values: list[bool | None] = [None] * len(self._gates)
        for gate_id in self._topological_order():
            gate = self._gates[gate_id]
            if gate.kind is GateKind.VAR:
                if gate.payload not in valuation:
                    raise LineageError(f"valuation missing variable {gate.payload!r}")
                values[gate_id] = bool(valuation[gate.payload])
            elif gate.kind is GateKind.CONST:
                values[gate_id] = bool(gate.payload)
            elif gate.kind is GateKind.NOT:
                values[gate_id] = not values[gate.inputs[0]]
            elif gate.kind is GateKind.AND:
                values[gate_id] = all(values[i] for i in gate.inputs)
            elif gate.kind is GateKind.OR:
                values[gate_id] = any(values[i] for i in gate.inputs)
        result = values[self.output]
        assert result is not None
        return result

    def _topological_order(self) -> list[int]:
        # Gates are created before they are used, so ids are already topological.
        return list(range(len(self._gates)))

    def reachable_gates(self) -> list[int]:
        """Gate ids reachable from the output (the 'useful' part of the circuit)."""
        if self.output is None:
            raise LineageError("circuit has no output gate")
        seen: set[int] = set()
        stack = [self.output]
        while stack:
            gate_id = stack.pop()
            if gate_id in seen:
                continue
            seen.add(gate_id)
            stack.extend(self._gates[gate_id].inputs)
        return sorted(seen)

    def pruned(self) -> "BooleanCircuit":
        """A copy with only the gates reachable from the output."""
        if self.output is None:
            raise LineageError("circuit has no output gate")
        keep = self.reachable_gates()
        remap: dict[int, int] = {}
        clone = BooleanCircuit()
        for gate_id in keep:
            gate = self._gates[gate_id]
            if gate.kind is GateKind.VAR:
                remap[gate_id] = clone.variable(gate.payload)
            elif gate.kind is GateKind.CONST:
                remap[gate_id] = clone.constant(gate.payload)
            elif gate.kind is GateKind.NOT:
                remap[gate_id] = clone.negation(remap[gate.inputs[0]])
            elif gate.kind is GateKind.AND:
                remap[gate_id] = clone.conjunction([remap[i] for i in gate.inputs])
            else:
                remap[gate_id] = clone.disjunction([remap[i] for i in gate.inputs])
        clone.set_output(remap[self.output])
        return clone

    def is_monotone(self) -> bool:
        """True if no NOT gate is reachable from the output."""
        return all(
            self._gates[g].kind is not GateKind.NOT for g in self.reachable_gates()
        )

    def restrict(self, partial: Mapping[Hashable, bool]) -> "BooleanCircuit":
        """The circuit with some variables replaced by constants."""
        clone = BooleanCircuit()
        remap: dict[int, int] = {}
        for gate_id, gate in self.gates():
            if gate.kind is GateKind.VAR:
                if gate.payload in partial:
                    remap[gate_id] = clone.constant(partial[gate.payload])
                else:
                    remap[gate_id] = clone.variable(gate.payload)
            elif gate.kind is GateKind.CONST:
                remap[gate_id] = clone.constant(gate.payload)
            elif gate.kind is GateKind.NOT:
                remap[gate_id] = clone.negation(remap[gate.inputs[0]])
            elif gate.kind is GateKind.AND:
                remap[gate_id] = clone.conjunction([remap[i] for i in gate.inputs])
            else:
                remap[gate_id] = clone.disjunction([remap[i] for i in gate.inputs])
        if self.output is not None:
            clone.set_output(remap[self.output])
        return clone

    # -- structure ------------------------------------------------------------

    def to_graph(self):
        """The undirected graph of the circuit (for treewidth measurements)."""
        from repro.structure.graph import Graph

        graph = Graph()
        for gate_id in range(len(self._gates)):
            graph.add_vertex(gate_id)
        for gate_id, gate in self.gates():
            for source in gate.inputs:
                graph.add_edge(source, gate_id)
        return graph

    def treewidth(self, exact: bool = False) -> int:
        """The treewidth of the circuit's underlying graph."""
        from repro.structure.tree_decomposition import treewidth as graph_treewidth

        return graph_treewidth(self.to_graph(), exact=exact)

    def pathwidth(self) -> int:
        from repro.structure.path_decomposition import pathwidth as graph_pathwidth

        return graph_pathwidth(self.to_graph())

    # -- exhaustive semantics (small circuits) ---------------------------------

    def satisfying_assignments(self) -> Iterator[dict[Hashable, bool]]:
        """All satisfying assignments over the circuit's variables (small circuits)."""
        names = list(self.variables())
        if len(names) > 22:
            raise LineageError("too many variables for exhaustive enumeration")
        for mask in range(1 << len(names)):
            valuation = {name: bool(mask >> i & 1) for i, name in enumerate(names)}
            if self.evaluate(valuation):
                yield valuation

    def model_count(self) -> int:
        """Number of satisfying assignments (exhaustive; small circuits only)."""
        return sum(1 for _ in self.satisfying_assignments())

    def equivalent_to(self, other: "BooleanCircuit") -> bool:
        """Exhaustive equivalence check over the union of variable sets (small)."""
        names = sorted(
            set(self.variables()) | set(other.variables()),
            key=lambda v: (type(v).__name__, repr(v)),
        )
        if len(names) > 22:
            raise LineageError("too many variables for exhaustive equivalence check")
        for mask in range(1 << len(names)):
            valuation = {name: bool(mask >> i & 1) for i, name in enumerate(names)}
            if self.evaluate(valuation) != other.evaluate(valuation):
                return False
        return True


def circuit_from_function(
    variables: Sequence[Hashable], function: Callable[[Mapping[Hashable, bool]], bool]
) -> BooleanCircuit:
    """Build a (DNF) circuit from a Boolean function given as a Python callable.

    Exhaustive over the variables; only for small variable counts (testing).
    """
    circuit = BooleanCircuit()
    terms: list[int] = []
    names = list(variables)
    if len(names) > 20:
        raise LineageError("too many variables to tabulate")
    for mask in range(1 << len(names)):
        valuation = {name: bool(mask >> i & 1) for i, name in enumerate(names)}
        if function(valuation):
            literals = []
            for name in names:
                var = circuit.variable(name)
                literals.append(var if valuation[name] else circuit.negation(var))
            terms.append(circuit.conjunction(literals))
    circuit.set_output(circuit.disjunction(terms))
    return circuit
