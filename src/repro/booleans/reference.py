"""Seed recursive OBDD algorithms, kept as differential references.

PR 4 rebuilt the knowledge-compilation core as iterative, array-oriented
kernels (the trie-driven DNF compilation and the fused sweep of
:mod:`repro.booleans.obdd`).  This module preserves the *seed* algorithms —
the clause-by-clause ``apply`` fold with string-tagged tuple cache keys, the
recursive probability / model-count walks, and the per-cut width loop — in
their original recursive form, for two purposes:

* **differential testing**: the property suite checks that the new kernels
  produce the same reduced root ids and the same exact values as these
  references on randomized workloads (``tests/test_sweep_kernel.py``);
* **benchmarking**: ``benchmarks/bench_compile.py`` measures the new compile
  path against this seed path and gates CI on a >= 3x speedup.

Everything here intentionally inherits the seed's limitations: recursion
depth is bounded by the interpreter stack (deep variable orders raise
``RecursionError``) and the fold is quadratic on path-shaped lineages.  Do
not use these from production code paths.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Iterable, Mapping

from repro.booleans.obdd import FALSE_NODE, TRUE_NODE, OBDD
from repro.errors import LineageError

__all__ = [
    "apply_binary_recursive",
    "build_from_clauses_fold",
    "model_count_recursive",
    "probability_recursive",
    "width_by_cuts",
]


def apply_binary_recursive(
    manager: OBDD, op: str, left: int, right: int, cache: dict | None = None
) -> int:
    """The seed ``apply``: recursive, with ``(op, left, right)`` tuple keys.

    ``cache`` mimics the seed's per-manager apply cache; pass one dictionary
    across calls to reproduce the seed's memoization behaviour exactly.
    """
    if cache is None:
        cache = {}
    if op == "and":
        if left == FALSE_NODE or right == FALSE_NODE:
            return FALSE_NODE
        if left == TRUE_NODE:
            return right
        if right == TRUE_NODE:
            return left
    else:
        if left == TRUE_NODE or right == TRUE_NODE:
            return TRUE_NODE
        if left == FALSE_NODE:
            return right
        if right == FALSE_NODE:
            return left
    if left == right:
        return left
    key = (op, left, right) if left <= right else (op, right, left)
    cached = cache.get(key)
    if cached is not None:
        return cached
    nodes = manager._nodes
    n = len(manager.variable_order)
    left_level = nodes[left][0] if left > TRUE_NODE else n
    right_level = nodes[right][0] if right > TRUE_NODE else n
    level = min(left_level, right_level)
    if left_level == level:
        left_low, left_high = nodes[left][1], nodes[left][2]
    else:
        left_low = left_high = left
    if right_level == level:
        right_low, right_high = nodes[right][1], nodes[right][2]
    else:
        right_low = right_high = right
    result = manager.make_node(
        level,
        apply_binary_recursive(manager, op, left_low, right_low, cache),
        apply_binary_recursive(manager, op, left_high, right_high, cache),
    )
    cache[key] = result
    return result


def build_from_clauses_fold(manager: OBDD, clauses: Iterable[Iterable[Hashable]]) -> int:
    """The seed DNF compilation: a left fold of per-clause ``apply`` calls.

    Each clause is compiled by folding ``apply_and`` over its literals and the
    clauses are folded into the accumulator with ``apply_or`` — the quadratic
    intermediate blowup the trie construction of
    :meth:`repro.booleans.obdd.OBDD.build_from_clauses` eliminates.  Both
    produce the same reduced diagram (hence the same root id in the same
    manager).
    """
    cache: dict = {}
    terms = []
    for clause in clauses:
        term = TRUE_NODE
        for variable in clause:
            term = apply_binary_recursive(manager, "and", term, manager.literal(variable), cache)
        terms.append(term)
    result = FALSE_NODE
    for term in terms:
        result = apply_binary_recursive(manager, "or", result, term, cache)
    return result


def probability_recursive(
    manager: OBDD, node: int, probabilities: Mapping[Hashable, Fraction | float]
) -> Fraction:
    """The seed probability evaluation: a fresh recursive Fraction walk."""
    probs = {
        v: Fraction(p) if not isinstance(p, Fraction) else p for v, p in probabilities.items()
    }
    cache: dict[int, Fraction] = {FALSE_NODE: Fraction(0), TRUE_NODE: Fraction(1)}
    order = manager.variable_order

    def walk(current: int) -> Fraction:
        if current in cache:
            return cache[current]
        level, low, high = manager._nodes[current]
        variable = order[level]
        if variable not in probs:
            raise LineageError(f"missing probability for variable {variable!r}")
        p = probs[variable]
        result = p * walk(high) + (1 - p) * walk(low)
        cache[current] = result
        return result

    return walk(node)


def model_count_recursive(manager: OBDD, node: int) -> int:
    """The seed model count: a recursive walk with per-level shifts."""
    n = len(manager.variable_order)
    cache: dict[int, int] = {}

    def walk(current: int, level: int) -> int:
        if current == FALSE_NODE:
            return 0
        if current == TRUE_NODE:
            return 1 << (n - level)
        node_level = manager._nodes[current][0]
        if current in cache:
            return cache[current] << (node_level - level)
        _, low, high = manager._nodes[current]
        count = walk(low, node_level + 1) + walk(high, node_level + 1)
        cache[current] = count
        return count << (node_level - level)

    return walk(node, 0)


def width_by_cuts(manager: OBDD, node: int) -> int:
    """The seed width measurement: one live-set scan per cut (quadratic)."""
    if node <= TRUE_NODE:
        return 1
    reachable = manager.reachable_nodes(node)
    n = len(manager.variable_order)

    def landing(target: int) -> int:
        return manager._nodes[target][0] if target > TRUE_NODE else n

    incoming: list[tuple[int, int]] = []
    for current in reachable:
        level, low, high = manager._nodes[current]
        incoming.append((level, low))
        incoming.append((level, high))
    width = 1
    root_landing = landing(node)
    for cut in range(1, n + 1):
        live: set[int] = set()
        if cut <= root_landing:
            live.add(node)
        for source_level, target in incoming:
            if source_level < cut <= landing(target):
                live.add(target)
        width = max(width, len(live))
    return width
