"""Boolean formulas (tree-shaped circuits) and the Section 7 constructions.

Section 7 of the paper contrasts circuit lineage representations with
*formula* representations: a formula cannot share subformulas, which costs
super-linear blow-ups even for simple CQ≠ and MSO lineages.  This module
provides:

* a formula AST with size measures (the paper counts *variable occurrences*,
  a.k.a. leaf size, following Wegener [51]);
* expansion of a circuit into a formula (exponential in general);
* the classical divide-and-conquer upper-bound constructions for threshold
  and parity functions, used to chart the conciseness gap of Table 2;
* exhaustive minimal-formula search for tiny functions, used to validate the
  lower-bound shape.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from repro.booleans.circuit import BooleanCircuit, GateKind
from repro.errors import LineageError


@dataclass(frozen=True)
class Formula:
    """A Boolean formula node: 'var', 'const', 'not', 'and', 'or'."""

    kind: str
    children: tuple["Formula", ...] = ()
    payload: object = None

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def var(name: Hashable) -> "Formula":
        return Formula("var", (), name)

    @staticmethod
    def const(value: bool) -> "Formula":
        return Formula("const", (), bool(value))

    @staticmethod
    def negation(child: "Formula") -> "Formula":
        return Formula("not", (child,))

    @staticmethod
    def conjunction(children: Sequence["Formula"]) -> "Formula":
        children = tuple(children)
        if not children:
            return Formula.const(True)
        if len(children) == 1:
            return children[0]
        return Formula("and", children)

    @staticmethod
    def disjunction(children: Sequence["Formula"]) -> "Formula":
        children = tuple(children)
        if not children:
            return Formula.const(False)
        if len(children) == 1:
            return children[0]
        return Formula("or", children)

    # -- measures --------------------------------------------------------------

    @property
    def leaf_size(self) -> int:
        """Number of variable occurrences (the formula-size measure of [51])."""
        if self.kind == "var":
            return 1
        if self.kind == "const":
            return 0
        return sum(child.leaf_size for child in self.children)

    @property
    def node_count(self) -> int:
        return 1 + sum(child.node_count for child in self.children)

    @property
    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.depth for child in self.children)

    def variables(self) -> set:
        if self.kind == "var":
            return {self.payload}
        result: set = set()
        for child in self.children:
            result |= child.variables()
        return result

    def is_monotone(self) -> bool:
        if self.kind == "not":
            return False
        return all(child.is_monotone() for child in self.children)

    # -- semantics --------------------------------------------------------------

    def evaluate(self, valuation: Mapping[Hashable, bool]) -> bool:
        if self.kind == "var":
            return bool(valuation[self.payload])
        if self.kind == "const":
            return bool(self.payload)
        if self.kind == "not":
            return not self.children[0].evaluate(valuation)
        if self.kind == "and":
            return all(child.evaluate(valuation) for child in self.children)
        if self.kind == "or":
            return any(child.evaluate(valuation) for child in self.children)
        raise LineageError(f"unknown formula kind {self.kind!r}")

    def to_circuit(self) -> BooleanCircuit:
        circuit = BooleanCircuit()

        def build(node: "Formula") -> int:
            if node.kind == "var":
                return circuit.variable(node.payload)
            if node.kind == "const":
                return circuit.constant(bool(node.payload))
            if node.kind == "not":
                return circuit.negation(build(node.children[0]))
            if node.kind == "and":
                return circuit.conjunction([build(c) for c in node.children])
            return circuit.disjunction([build(c) for c in node.children])

        circuit.set_output(build(self))
        return circuit

    def __str__(self) -> str:
        if self.kind == "var":
            return str(self.payload)
        if self.kind == "const":
            return "1" if self.payload else "0"
        if self.kind == "not":
            return f"~{self.children[0]}"
        joiner = " & " if self.kind == "and" else " | "
        return "(" + joiner.join(str(c) for c in self.children) + ")"


def circuit_to_formula(circuit: BooleanCircuit, max_size: int = 2_000_000) -> Formula:
    """Expand a circuit into a formula by duplicating shared subcircuits.

    The expansion can be exponential; ``max_size`` guards against runaway
    growth (measured in formula nodes created).
    """
    if circuit.output is None:
        raise LineageError("circuit has no output")
    budget = [max_size]

    def expand(gate_id: int) -> Formula:
        if budget[0] <= 0:
            raise LineageError("formula expansion exceeded the size budget")
        budget[0] -= 1
        gate = circuit.gate(gate_id)
        if gate.kind is GateKind.VAR:
            return Formula.var(gate.payload)
        if gate.kind is GateKind.CONST:
            return Formula.const(gate.payload)
        if gate.kind is GateKind.NOT:
            return Formula.negation(expand(gate.inputs[0]))
        children = [expand(i) for i in gate.inputs]
        if gate.kind is GateKind.AND:
            return Formula.conjunction(children)
        return Formula.disjunction(children)

    return expand(circuit.output)


# ---------------------------------------------------------------------------
# Classical constructions: threshold and parity
# ---------------------------------------------------------------------------


def threshold_2_formula(variables: Sequence[Hashable]) -> Formula:
    """A monotone formula for "at least two of the variables are true".

    Divide-and-conquer: split the variables in halves L, R; then
    TH2(X) = TH2(L) | TH2(R) | (OR(L) & OR(R)).
    Its leaf size is O(n log n), matching the monotone lower bound of
    Proposition 7.2 up to constants (the general lower bound is
    Omega(n log log n), Proposition 7.1).
    """
    names = list(variables)
    if len(names) < 2:
        return Formula.const(False)

    def any_of(block: Sequence[Hashable]) -> Formula:
        return Formula.disjunction([Formula.var(v) for v in block])

    def build(block: Sequence[Hashable]) -> Formula:
        if len(block) < 2:
            return Formula.const(False)
        if len(block) == 2:
            return Formula.conjunction([Formula.var(block[0]), Formula.var(block[1])])
        middle = len(block) // 2
        left, right = block[:middle], block[middle:]
        return Formula.disjunction(
            [build(left), build(right), Formula.conjunction([any_of(left), any_of(right)])]
        )

    return build(names)


def threshold_2_circuit(variables: Sequence[Hashable]) -> BooleanCircuit:
    """A linear-size monotone circuit for "at least two variables are true".

    A simple sequential scan sharing the running "at least one so far" gate;
    this is the circuit side of the conciseness gap of Section 7.
    """
    circuit = BooleanCircuit()
    names = list(variables)
    at_least_one = circuit.constant(False)
    at_least_two = circuit.constant(False)
    for name in names:
        var = circuit.variable(name)
        at_least_two = circuit.disjunction([at_least_two, circuit.conjunction([at_least_one, var])])
        at_least_one = circuit.disjunction([at_least_one, var])
    circuit.set_output(at_least_two)
    return circuit


def parity_formula(variables: Sequence[Hashable]) -> Formula:
    """A formula for the parity (XOR) of the variables.

    The classical recursive construction XOR(L, R) = (L & ~R) | (~L & R)
    over balanced halves has leaf size Theta(n^2) — which matches the
    Omega(n^2) lower bound of Proposition 7.3 (parity is the witness function
    there), so for parity this upper bound is tight.
    """
    names = list(variables)
    if not names:
        return Formula.const(False)

    def build(block: Sequence[Hashable]) -> tuple[Formula, Formula]:
        """Return (formula for XOR(block), formula for NOT XOR(block))."""
        if len(block) == 1:
            return Formula.var(block[0]), Formula.negation(Formula.var(block[0]))
        middle = len(block) // 2
        left_pos, left_neg = build(block[:middle])
        right_pos, right_neg = build(block[middle:])
        positive = Formula.disjunction(
            [Formula.conjunction([left_pos, right_neg]), Formula.conjunction([left_neg, right_pos])]
        )
        negative = Formula.disjunction(
            [Formula.conjunction([left_pos, right_pos]), Formula.conjunction([left_neg, right_neg])]
        )
        return positive, negative

    return build(names)[0]


def parity_circuit(variables: Sequence[Hashable]) -> BooleanCircuit:
    """A linear-size circuit for parity (running XOR with shared subcircuits)."""
    circuit = BooleanCircuit()
    names = list(variables)
    odd = circuit.constant(False)
    for name in names:
        var = circuit.variable(name)
        not_var = circuit.negation(var)
        not_odd = circuit.negation(odd)
        odd = circuit.disjunction(
            [circuit.conjunction([odd, not_var]), circuit.conjunction([not_odd, var])]
        )
    circuit.set_output(odd)
    return circuit


# ---------------------------------------------------------------------------
# Exhaustive minimal-formula search (tiny n, to chart the lower bounds)
# ---------------------------------------------------------------------------


def minimal_formula_size(
    variables: Sequence[Hashable],
    function: Callable[[Mapping[Hashable, bool]], bool],
    monotone: bool = False,
    max_leaves: int = 14,
) -> int:
    """The minimum leaf size of a formula computing ``function``.

    Brute-force search by dynamic programming on formula leaf size: we
    enumerate, for each leaf budget s, the set of Boolean functions (as truth
    tables) computable by formulas with exactly s leaves, and stop at the
    first budget that reaches the target.  Only feasible for very few
    variables (<= 4-5) and small budgets; used to validate the shape of the
    Section 7 lower bounds on tiny instances.
    """
    names = list(variables)
    n = len(names)
    size = 1 << n

    def table_of(f: Callable[[Mapping[Hashable, bool]], bool]) -> int:
        table = 0
        for mask in range(size):
            valuation = {name: bool(mask >> i & 1) for i, name in enumerate(names)}
            if f(valuation):
                table |= 1 << mask
        return table

    target = table_of(function)
    full = (1 << size) - 1

    literal_tables: list[int] = []
    for i in range(n):
        positive = 0
        for mask in range(size):
            if mask >> i & 1:
                positive |= 1 << mask
        literal_tables.append(positive)
        if not monotone:
            literal_tables.append(full ^ positive)

    if target in (0, full):
        return 0
    by_leaves: list[set[int]] = [set(), set(literal_tables)]
    if target in by_leaves[1]:
        return 1
    for leaves in range(2, max_leaves + 1):
        current: set[int] = set()
        for left_leaves in range(1, leaves):
            right_leaves = leaves - left_leaves
            if right_leaves < 1 or right_leaves >= len(by_leaves):
                continue
            for left in by_leaves[left_leaves]:
                for right in by_leaves[right_leaves]:
                    current.add(left & right)
                    current.add(left | right)
                    if not monotone:
                        current.add(full ^ (left & right))
                        current.add(full ^ (left | right))
        if target in current:
            return leaves
        by_leaves.append(current)
    raise LineageError(f"no formula with at most {max_leaves} leaves computes the target")
