"""Ordered Binary Decision Diagrams (Definition 6.4).

Reduced OBDDs with hash-consing over a fixed variable order, supporting the
classical ``apply`` combination, restriction, probability evaluation, model
counting, size and *width* measurements (the width measure of Definition 6.4:
the maximum number of nodes at any level, a level being indexed by a prefix of
the variable order).

The OBDD manager owns the node table; OBDD nodes are integers.  Terminal
nodes are 0 (false) and 1 (true).

Every algorithm in this module is **iterative**: ``apply``, negation,
restriction, and all measurements run on explicit-stack worklists, so the
supported depth is bounded by memory rather than the interpreter recursion
limit (a line instance of length 2000 compiles and evaluates fine).  The
operation caches are keyed by packed integers (``(left << 34) | (right << 2)
| op``) instead of tuples, and restriction results are memoized at the
manager level exactly like ``apply`` results.

Measurements share one **fused sweep kernel** (:meth:`OBDD.sweep`): a single
reverse-topological pass over the reachable node array computes probability,
model count, size, and width together, with a float fast path and an exact
:class:`~fractions.Fraction` fallback.  Monotone DNFs are compiled by a
trie-driven bottom-up construction (:meth:`OBDD.build_from_clauses`) instead
of a clause-by-clause ``apply`` fold; the seed fold survives as a
differential reference in :mod:`repro.booleans.reference`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from repro import resilience as _resilience
from repro.errors import CompilationError, LineageError

# How many sweep iterations pass between wall-clock checkpoints when a
# resource budget is active; one Deadline consultation per stride keeps the
# checkpoint overhead under the bench_resilience gate.
_CHECKPOINT_STRIDE = 4096

FALSE_NODE = 0
TRUE_NODE = 1

# Operation tags for the packed-integer apply cache.  A cache key is
# ``(left << _KEY_SHIFT) | (right << 2) | op`` with commutative operands
# normalised so left <= right; node ids are assumed to fit in 32 bits.
_OP_AND = 0
_OP_OR = 1
_OP_NOT = 2
_KEY_SHIFT = 34


@dataclass(frozen=True, slots=True)
class SweepResult:
    """The outputs of one fused topological sweep over a reachable node array.

    Fields not requested from :meth:`OBDD.sweep` are ``None``; ``size`` (the
    number of reachable decision nodes) is always computed since the sweep
    materializes the reachable set anyway.
    """

    size: int
    probability: Fraction | float | None = None
    model_count: int | None = None
    width: int | None = None


class OBDD:
    """A reduced OBDD manager over a fixed variable order.

    Parameters
    ----------
    variable_order:
        The total order Pi on variables; all functions managed by this OBDD
        use (a subset of) these variables, tested in this order.
    """

    def __init__(self, variable_order: Sequence[Hashable]) -> None:
        order = list(variable_order)
        if len(set(order)) != len(order):
            raise LineageError("variable order contains duplicates")
        self._order: list[Hashable] = order
        self._level: dict[Hashable, int] = {v: i for i, v in enumerate(order)}
        # node id -> (level, low child, high child); ids 0/1 are terminals.
        self._nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[int, int] = {}
        self._restrict_cache: dict[int, int] = {}
        self.root: int = FALSE_NODE

    # -- construction ----------------------------------------------------------

    @property
    def variable_order(self) -> tuple[Hashable, ...]:
        return tuple(self._order)

    def level_of(self, variable: Hashable) -> int:
        try:
            return self._level[variable]
        except KeyError:
            raise LineageError(f"variable {variable!r} not in the OBDD order") from None

    def make_node(self, level: int, low: int, high: int) -> int:
        """The (hash-consed) node testing the variable at ``level``."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            # The single allocation choke point: every construction path
            # (build_from_clauses, apply, restrict) creates nodes only here,
            # so charging the ambient budget per unique-table insert caps
            # them all.  Re-derived (hash-consed) nodes are free.
            budget = _resilience.ACTIVE
            if budget is not None:
                budget.charge_nodes(1)
            self._nodes.append(key)
            node = len(self._nodes) - 1
            self._unique[key] = node
        return node

    def terminal(self, value: bool) -> int:
        return TRUE_NODE if value else FALSE_NODE

    def literal(self, variable: Hashable, positive: bool = True) -> int:
        level = self.level_of(variable)
        if positive:
            return self.make_node(level, FALSE_NODE, TRUE_NODE)
        return self.make_node(level, TRUE_NODE, FALSE_NODE)

    # -- boolean operations ------------------------------------------------------

    def apply_not(self, node: int) -> int:
        if node == FALSE_NODE:
            return TRUE_NODE
        if node == TRUE_NODE:
            return FALSE_NODE
        cache = self._apply_cache
        nodes = self._nodes
        root_key = (node << _KEY_SHIFT) | _OP_NOT
        if root_key in cache:
            return cache[root_key]
        stack = [node]
        while stack:
            current = stack[-1]
            key = (current << _KEY_SHIFT) | _OP_NOT
            if key in cache:
                stack.pop()
                continue
            level, low, high = nodes[current]
            low_result = self._not_ready(low)
            high_result = self._not_ready(high)
            if low_result is None or high_result is None:
                if low_result is None:
                    stack.append(low)
                if high_result is None:
                    stack.append(high)
                continue
            cache[key] = self.make_node(level, low_result, high_result)
            stack.pop()
        return cache[root_key]

    def _not_ready(self, node: int) -> int | None:
        """The negation of ``node`` when immediately available, else None."""
        if node == FALSE_NODE:
            return TRUE_NODE
        if node == TRUE_NODE:
            return FALSE_NODE
        return self._apply_cache.get((node << _KEY_SHIFT) | _OP_NOT)

    def apply_and(self, left: int, right: int) -> int:
        return self._apply_binary(_OP_AND, left, right)

    def apply_or(self, left: int, right: int) -> int:
        return self._apply_binary(_OP_OR, left, right)

    @staticmethod
    def _apply_shortcut(op: int, left: int, right: int) -> int | None:
        """Terminal/absorption cases of ``apply`` that need no traversal."""
        if op == _OP_AND:
            if left == FALSE_NODE or right == FALSE_NODE:
                return FALSE_NODE
            if left == TRUE_NODE:
                return right
            if right == TRUE_NODE:
                return left
        else:
            if left == TRUE_NODE or right == TRUE_NODE:
                return TRUE_NODE
            if left == FALSE_NODE:
                return right
            if right == FALSE_NODE:
                return left
        if left == right:
            return left
        return None

    def _apply_binary(self, op: int, left: int, right: int) -> int:
        quick = self._apply_shortcut(op, left, right)
        if quick is not None:
            return quick
        cache = self._apply_cache
        nodes = self._nodes
        n = len(self._order)
        if left > right:
            left, right = right, left
        root_key = (left << _KEY_SHIFT) | (right << 2) | op
        if root_key in cache:
            return cache[root_key]
        stack = [(left, right)]
        while stack:
            l, r = stack[-1]
            key = (l << _KEY_SHIFT) | (r << 2) | op
            if key in cache:
                stack.pop()
                continue
            l_level = nodes[l][0] if l > TRUE_NODE else n
            r_level = nodes[r][0] if r > TRUE_NODE else n
            level = l_level if l_level < r_level else r_level
            if l_level == level:
                l_low, l_high = nodes[l][1], nodes[l][2]
            else:
                l_low = l_high = l
            if r_level == level:
                r_low, r_high = nodes[r][1], nodes[r][2]
            else:
                r_low = r_high = r
            low_result = self._apply_ready(op, l_low, r_low)
            high_result = self._apply_ready(op, l_high, r_high)
            if low_result is None or high_result is None:
                if low_result is None:
                    stack.append((l_low, r_low) if l_low <= r_low else (r_low, l_low))
                if high_result is None:
                    stack.append((l_high, r_high) if l_high <= r_high else (r_high, l_high))
                continue
            cache[key] = self.make_node(level, low_result, high_result)
            stack.pop()
        return cache[root_key]

    def _apply_ready(self, op: int, left: int, right: int) -> int | None:
        """The result of ``apply`` on a pair when immediately available."""
        quick = self._apply_shortcut(op, left, right)
        if quick is not None:
            return quick
        if left > right:
            left, right = right, left
        return self._apply_cache.get((left << _KEY_SHIFT) | (right << 2) | op)

    def conjunction(self, nodes: Iterable[int]) -> int:
        return self._balanced_combine(_OP_AND, list(nodes), TRUE_NODE)

    def disjunction(self, nodes: Iterable[int]) -> int:
        return self._balanced_combine(_OP_OR, list(nodes), FALSE_NODE)

    def _balanced_combine(self, op: int, operands: list[int], neutral: int) -> int:
        """N-ary apply by balanced pairwise merging.

        A left fold combines a growing accumulator with each operand in turn,
        which is quadratic when the intermediate results grow; merging
        adjacent pairs keeps both sides of every ``apply`` comparably small
        (logarithmic depth).
        """
        if not operands:
            return neutral
        while len(operands) > 1:
            merged = [
                self._apply_binary(op, operands[i], operands[i + 1])
                for i in range(0, len(operands) - 1, 2)
            ]
            if len(operands) % 2:
                merged.append(operands[-1])
            operands = merged
        return operands[0]

    def restrict(self, node: int, variable: Hashable, value: bool) -> int:
        """The cofactor of ``node`` with ``variable`` fixed to ``value``.

        Results are memoized in a manager-level cache keyed by packed
        ``(node, level, value)`` integers, so repeated restrictions (e.g. the
        per-variable cofactors of one diagram) are served like ``apply`` hits
        instead of rebuilding a throwaway per-call dictionary.
        """
        target = self.level_of(variable)
        bit = 1 if value else 0
        if node <= TRUE_NODE:
            return node
        cache = self._restrict_cache
        nodes = self._nodes
        root_key = (node << _KEY_SHIFT) | (target << 1) | bit
        if root_key in cache:
            return cache[root_key]
        stack = [node]
        while stack:
            current = stack[-1]
            key = (current << _KEY_SHIFT) | (target << 1) | bit
            if key in cache:
                stack.pop()
                continue
            level, low, high = nodes[current]
            if level == target:
                cache[key] = high if value else low
                stack.pop()
                continue
            if level > target:
                cache[key] = current
                stack.pop()
                continue
            low_result = self._restrict_ready(low, target, bit)
            high_result = self._restrict_ready(high, target, bit)
            if low_result is None or high_result is None:
                if low_result is None:
                    stack.append(low)
                if high_result is None:
                    stack.append(high)
                continue
            cache[key] = self.make_node(level, low_result, high_result)
            stack.pop()
        return cache[root_key]

    def _restrict_ready(self, node: int, target: int, bit: int) -> int | None:
        if node <= TRUE_NODE:
            return node
        return self._restrict_cache.get((node << _KEY_SHIFT) | (target << 1) | bit)

    # -- semantics ---------------------------------------------------------------

    def evaluate(self, node: int, valuation: Mapping[Hashable, bool]) -> bool:
        current = node
        while current > TRUE_NODE:
            level, low, high = self._nodes[current]
            variable = self._order[level]
            current = high if valuation.get(variable, False) else low
        return current == TRUE_NODE

    # -- the fused sweep kernel ---------------------------------------------------

    def sweep(
        self,
        node: int,
        probabilities: Mapping[Hashable, Fraction | float] | None = None,
        *,
        model_count: bool = False,
        width: bool = False,
        exact: bool = True,
    ) -> SweepResult:
        """Probability, model count, size, and width in one topological pass.

        The reachable nodes are collected once and processed in reverse
        topological order (deepest level first), so every requested quantity
        is produced by the same sweep instead of one recursive walk each.
        ``probabilities`` triggers the probability computation; ``exact=True``
        (the default, and the contract of every exact route in this library)
        computes with :class:`~fractions.Fraction`; ``exact=False`` runs a
        float fast path whose result is always a float in ``[0, 1]``: gross
        degeneracy (non-finite, or off by more than 1e-9) falls back to the
        exact kernel (then coerced to float), and sub-tolerance rounding
        excursions are clamped.
        """
        result = self._sweep_impl(node, probabilities, model_count, width, exact)
        if not exact and result.probability is not None:
            value = result.probability
            if not (math.isfinite(value) and -1e-9 <= value <= 1 + 1e-9):
                fallback = self._sweep_impl(node, probabilities, model_count, width, True)
                result = SweepResult(
                    size=fallback.size,
                    probability=float(fallback.probability),
                    model_count=fallback.model_count,
                    width=fallback.width,
                )
            elif not 0.0 <= value <= 1.0:
                # Sub-tolerance float rounding: clamp so callers always see a
                # probability inside [0, 1].
                result = SweepResult(
                    size=result.size,
                    probability=min(max(value, 0.0), 1.0),
                    model_count=result.model_count,
                    width=result.width,
                )
        return result

    def _sweep_impl(
        self,
        node: int,
        probabilities: Mapping[Hashable, Fraction | float] | None,
        want_count: bool,
        want_width: bool,
        exact: bool,
    ) -> SweepResult:
        n = len(self._order)
        nodes = self._nodes
        want_probability = probabilities is not None
        if node <= TRUE_NODE:
            is_true = node == TRUE_NODE
            probability: Fraction | float | None = None
            if want_probability:
                probability = Fraction(1 if is_true else 0) if exact else float(is_true)
            return SweepResult(
                size=0,
                probability=probability,
                model_count=((1 << n) if is_true else 0) if want_count else None,
                width=1 if want_width else None,
            )

        reachable = self._reachable_list(node)
        # Children always sit at strictly larger levels, so sorting by level
        # descending is a reverse topological order of the reachable DAG.
        reachable.sort(key=lambda current: nodes[current][0], reverse=True)

        # Wall-clock checkpoints for the fused sweep: consult the ambient
        # deadline once up front and then every _CHECKPOINT_STRIDE nodes, so
        # a sweep over millions of nodes stays interruptible.
        budget = _resilience.ACTIVE
        if budget is not None:
            budget.checkpoint()
        countdown = _CHECKPOINT_STRIDE

        prob_of_level: dict[int, Fraction | float] = {}

        def level_probability(level: int) -> Fraction | float:
            p = prob_of_level.get(level)
            if p is None:
                variable = self._order[level]
                if variable not in probabilities:
                    raise LineageError(f"missing probability for variable {variable!r}")
                raw = probabilities[variable]
                p = (raw if isinstance(raw, Fraction) else Fraction(raw)) if exact else float(raw)
                prob_of_level[level] = p
            return p

        prob_values: dict[int, Fraction | float] | None = None
        if want_probability:
            one = Fraction(1) if exact else 1.0
            zero = Fraction(0) if exact else 0.0
            prob_values = {FALSE_NODE: zero, TRUE_NODE: one}
        count_values: dict[int, int] | None = {TRUE_NODE: 1, FALSE_NODE: 0} if want_count else None
        # For the width, each distinct edge target is live exactly at the cuts
        # L with min_source_level(target) < L <= landing(target); the maximum
        # number of simultaneously live targets over all cuts is the width.
        min_source: dict[int, int] | None = {} if want_width else None

        for current in reachable:
            if budget is not None:
                countdown -= 1
                if countdown == 0:
                    countdown = _CHECKPOINT_STRIDE
                    budget.checkpoint()
            level, low, high = nodes[current]
            if want_probability:
                p = level_probability(level)
                prob_values[current] = (
                    p * prob_values[high] + (1 - p) * prob_values[low]
                )
            if want_count:
                low_landing = nodes[low][0] if low > TRUE_NODE else n
                high_landing = nodes[high][0] if high > TRUE_NODE else n
                count_values[current] = (count_values[low] << (low_landing - level - 1)) + (
                    count_values[high] << (high_landing - level - 1)
                )
            if want_width:
                for child in (low, high):
                    known = min_source.get(child)
                    if known is None or level < known:
                        min_source[child] = level

        width_value: int | None = None
        if want_width:
            # Difference array over the cuts 1..n: +1 where a target becomes
            # live, -1 one past its landing level; the root is live from cut 1
            # through its own level.
            delta = [0] * (n + 2)
            root_level = nodes[node][0]
            delta[1] += 1
            delta[root_level + 1] -= 1
            for target, source_level in min_source.items():
                landing = nodes[target][0] if target > TRUE_NODE else n
                if source_level + 1 <= landing:
                    delta[source_level + 1] += 1
                    delta[landing + 1] -= 1
            width_value = 1
            live = 0
            for cut in range(1, n + 1):
                live += delta[cut]
                if live > width_value:
                    width_value = live

        model_count_value: int | None = None
        if want_count:
            model_count_value = count_values[node] << nodes[node][0]

        return SweepResult(
            size=len(reachable),
            probability=prob_values[node] if want_probability else None,
            model_count=model_count_value,
            width=width_value,
        )

    def probability(self, node: int, probabilities: Mapping[Hashable, Fraction | float]) -> Fraction:
        """Exact probability that the function is true under independent variables."""
        return self.sweep(node, probabilities).probability

    def probability_float(self, node: int, probabilities: Mapping[Hashable, Fraction | float]) -> float:
        """The float fast path of the sweep kernel (exact fallback on degeneracy)."""
        return self.sweep(node, probabilities, exact=False).probability

    def model_count(self, node: int) -> int:
        """Number of satisfying assignments over the *full* variable order."""
        return self.sweep(node, model_count=True).model_count

    # -- measurements --------------------------------------------------------------

    def _reachable_list(self, node: int) -> list[int]:
        seen: set[int] = set()
        out: list[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen or current <= TRUE_NODE:
                continue
            seen.add(current)
            out.append(current)
            _, low, high = self._nodes[current]
            stack.append(low)
            stack.append(high)
        return out

    def reachable_nodes(self, node: int) -> set[int]:
        return set(self._reachable_list(node))

    def size(self, node: int) -> int:
        """Number of decision nodes reachable from ``node`` (terminals excluded)."""
        return len(self._reachable_list(node))

    def width(self, node: int) -> int:
        """The width of the OBDD rooted at ``node`` (Definition 6.4).

        The level of a node is the index of its variable in the order; the
        width is the maximum, over levels, of the number of *distinct
        subfunctions* reachable after fixing the variables of a strict prefix
        of the order.  For a reduced OBDD this equals, for each prefix length
        L, the number of distinct nodes (or terminals) that are the landing
        point of an edge crossing the cut before level L (plus the root while
        its level >= L); the fused sweep computes it by interval counting.
        """
        return self.sweep(node, width=True).width

    def node_table(self, node: int) -> list[tuple[int, Hashable, int, int]]:
        """A readable dump of the reachable nodes: (id, variable, low, high)."""
        return [
            (current, self._order[self._nodes[current][0]], self._nodes[current][1], self._nodes[current][2])
            for current in sorted(self._reachable_list(node))
        ]

    def __repr__(self) -> str:
        return f"OBDD(order of {len(self._order)} variables, {len(self._nodes) - 2} nodes allocated)"

    # -- columnar adapters -----------------------------------------------------

    def to_columnar(self, node: int, order: Sequence[Hashable] | None = None):
        """The diagram rooted at ``node`` as a :class:`~repro.booleans.columnar.
        ColumnarOBDD` (lossless; see :meth:`from_columnar` for the inverse)."""
        from repro.booleans.columnar import columnar_from_obdd

        return columnar_from_obdd(self, node, order)

    @classmethod
    def from_columnar(cls, columnar) -> "tuple[OBDD, int]":
        """Rebuild ``(manager, root)`` from a columnar artifact (lossless)."""
        return columnar.to_obdd()

    # -- building from other representations -----------------------------------------

    def build_from_circuit(self, circuit) -> int:
        """Compile a :class:`BooleanCircuit` bottom-up with ``apply``.

        Every circuit variable must appear in this OBDD's order.  Returns the
        root node of the compiled function.  N-ary gates are combined by
        balanced merging rather than a left fold.
        """
        from repro.booleans.circuit import GateKind

        if circuit.output is None:
            raise CompilationError("circuit has no output gate")
        missing = set(circuit.variables()) - set(self._order)
        if missing:
            raise CompilationError(f"circuit variables missing from OBDD order: {sorted(map(repr, missing))[:3]}")
        values: dict[int, int] = {}
        for gate_id in circuit.reachable_gates():
            gate = circuit.gate(gate_id)
            if gate.kind is GateKind.VAR:
                values[gate_id] = self.literal(gate.payload)
            elif gate.kind is GateKind.CONST:
                values[gate_id] = self.terminal(bool(gate.payload))
            elif gate.kind is GateKind.NOT:
                values[gate_id] = self.apply_not(values[gate.inputs[0]])
            elif gate.kind is GateKind.AND:
                values[gate_id] = self.conjunction(values[i] for i in gate.inputs)
            else:
                values[gate_id] = self.disjunction(values[i] for i in gate.inputs)
        self.root = values[circuit.output]
        return self.root

    def build_from_clauses(self, clauses: Iterable[Iterable[Hashable]]) -> int:
        """Compile a monotone DNF given as an iterable of variable sets.

        The clauses are arranged in a trie sorted by the variable order and
        the OBDD is built bottom-up along the trie: clauses sharing a prefix
        under the fact order are compiled once below the shared prefix, and
        each trie edge costs a single ``apply_or`` between the child's
        diagram and the accumulated sibling tail.  This replaces the seed's
        clause-by-clause ``apply`` fold (kept in
        :mod:`repro.booleans.reference`), whose accumulator makes the fold
        quadratic on path-shaped lineages; both constructions produce the
        same reduced diagram, hence the same root id, in the same manager.
        """
        level_clauses: set[tuple[int, ...]] = set()
        for clause in clauses:
            level_clauses.add(tuple(sorted({self.level_of(v) for v in clause})))
        self.root = self._compile_clause_trie(level_clauses)
        return self.root

    def _compile_clause_trie(self, level_clauses: set[tuple[int, ...]]) -> int:
        if not level_clauses:
            return FALSE_NODE
        if () in level_clauses:
            # The empty conjunction is TRUE and absorbs every other clause.
            return TRUE_NODE
        # Trie node: (children: level -> trie node id, accepting flag).
        children: list[dict[int, int]] = [{}]
        accepting: list[bool] = [False]
        for clause in sorted(level_clauses):
            current = 0
            for level in clause:
                child = children[current].get(level)
                if child is None:
                    children.append({})
                    accepting.append(False)
                    child = len(children) - 1
                    children[current][level] = child
                current = child
            accepting[current] = True
        # Compile the trie bottom-up with an explicit post-order stack: the
        # function of a trie node is OR over its edges (level, child) of
        # "variable AND child function", assembled from the deepest edge
        # upward so each edge costs one make_node and one apply_or.
        compiled: list[int | None] = [None] * len(children)
        stack = [0]
        while stack:
            trie_node = stack[-1]
            if accepting[trie_node]:
                # A clause ends here: the node's function is TRUE (minimal
                # DNFs never branch below an accepting node, but subsumed
                # clauses are absorbed correctly anyway).
                compiled[trie_node] = TRUE_NODE
                stack.pop()
                continue
            pending = [child for child in children[trie_node].values() if compiled[child] is None]
            if pending:
                stack.extend(pending)
                continue
            acc = FALSE_NODE
            for level in sorted(children[trie_node], reverse=True):
                child_function = compiled[children[trie_node][level]]
                acc = self.make_node(level, acc, self.apply_or(child_function, acc))
            compiled[trie_node] = acc
            stack.pop()
        return compiled[0]


def minimal_obdd_width(
    variables: Sequence[Hashable],
    build: Callable[[OBDD], int],
    orders: Iterable[Sequence[Hashable]] | None = None,
) -> int:
    """The minimum OBDD width of a function over a set of candidate orders.

    ``build`` receives a fresh OBDD manager and must return the root node of
    the function in that manager.  By default all permutations of the
    variables are tried (factorial; tiny variable counts only).
    """
    import itertools

    if orders is None:
        orders = itertools.permutations(list(variables))
    best: int | None = None
    for order in orders:
        manager = OBDD(list(order))
        root = build(manager)
        width = manager.width(root)
        if best is None or width < best:
            best = width
    if best is None:
        raise CompilationError("no candidate variable orders supplied")
    return best
