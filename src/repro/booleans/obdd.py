"""Ordered Binary Decision Diagrams (Definition 6.4).

Reduced OBDDs with hash-consing over a fixed variable order, supporting the
classical ``apply`` combination, restriction, probability evaluation, model
counting, size and *width* measurements (the width measure of Definition 6.4:
the maximum number of nodes at any level, a level being indexed by a prefix of
the variable order).

The OBDD manager owns the node table; OBDD nodes are integers.  Terminal
nodes are 0 (false) and 1 (true).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from repro.errors import CompilationError, LineageError

FALSE_NODE = 0
TRUE_NODE = 1


class OBDD:
    """A reduced OBDD manager over a fixed variable order.

    Parameters
    ----------
    variable_order:
        The total order Pi on variables; all functions managed by this OBDD
        use (a subset of) these variables, tested in this order.
    """

    def __init__(self, variable_order: Sequence[Hashable]) -> None:
        order = list(variable_order)
        if len(set(order)) != len(order):
            raise LineageError("variable order contains duplicates")
        self._order: list[Hashable] = order
        self._level: dict[Hashable, int] = {v: i for i, v in enumerate(order)}
        # node id -> (level, low child, high child); ids 0/1 are terminals.
        self._nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple, int] = {}
        self.root: int = FALSE_NODE

    # -- construction ----------------------------------------------------------

    @property
    def variable_order(self) -> tuple[Hashable, ...]:
        return tuple(self._order)

    def level_of(self, variable: Hashable) -> int:
        try:
            return self._level[variable]
        except KeyError:
            raise LineageError(f"variable {variable!r} not in the OBDD order") from None

    def make_node(self, level: int, low: int, high: int) -> int:
        """The (hash-consed) node testing the variable at ``level``."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            self._nodes.append(key)
            node = len(self._nodes) - 1
            self._unique[key] = node
        return node

    def terminal(self, value: bool) -> int:
        return TRUE_NODE if value else FALSE_NODE

    def literal(self, variable: Hashable, positive: bool = True) -> int:
        level = self.level_of(variable)
        if positive:
            return self.make_node(level, FALSE_NODE, TRUE_NODE)
        return self.make_node(level, TRUE_NODE, FALSE_NODE)

    # -- boolean operations ------------------------------------------------------

    def apply_not(self, node: int) -> int:
        cached = self._apply_cache.get(("not", node))
        if cached is not None:
            return cached
        if node == FALSE_NODE:
            result = TRUE_NODE
        elif node == TRUE_NODE:
            result = FALSE_NODE
        else:
            level, low, high = self._nodes[node]
            result = self.make_node(level, self.apply_not(low), self.apply_not(high))
        self._apply_cache[("not", node)] = result
        return result

    def apply_and(self, left: int, right: int) -> int:
        return self._apply_binary("and", left, right)

    def apply_or(self, left: int, right: int) -> int:
        return self._apply_binary("or", left, right)

    def _apply_binary(self, op: str, left: int, right: int) -> int:
        if op == "and":
            if left == FALSE_NODE or right == FALSE_NODE:
                return FALSE_NODE
            if left == TRUE_NODE:
                return right
            if right == TRUE_NODE:
                return left
        else:
            if left == TRUE_NODE or right == TRUE_NODE:
                return TRUE_NODE
            if left == FALSE_NODE:
                return right
            if right == FALSE_NODE:
                return left
        if left == right:
            return left
        key = (op, left, right) if left <= right else (op, right, left)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        left_level = self._nodes[left][0] if left > TRUE_NODE else len(self._order)
        right_level = self._nodes[right][0] if right > TRUE_NODE else len(self._order)
        level = min(left_level, right_level)
        if left_level == level:
            left_low, left_high = self._nodes[left][1], self._nodes[left][2]
        else:
            left_low = left_high = left
        if right_level == level:
            right_low, right_high = self._nodes[right][1], self._nodes[right][2]
        else:
            right_low = right_high = right
        result = self.make_node(
            level,
            self._apply_binary(op, left_low, right_low),
            self._apply_binary(op, left_high, right_high),
        )
        self._apply_cache[key] = result
        return result

    def conjunction(self, nodes: Iterable[int]) -> int:
        result = TRUE_NODE
        for node in nodes:
            result = self.apply_and(result, node)
        return result

    def disjunction(self, nodes: Iterable[int]) -> int:
        result = FALSE_NODE
        for node in nodes:
            result = self.apply_or(result, node)
        return result

    def restrict(self, node: int, variable: Hashable, value: bool) -> int:
        """The cofactor of ``node`` with ``variable`` fixed to ``value``."""
        target = self.level_of(variable)
        cache: dict[int, int] = {}

        def walk(current: int) -> int:
            if current <= TRUE_NODE:
                return current
            if current in cache:
                return cache[current]
            level, low, high = self._nodes[current]
            if level == target:
                result = high if value else low
            elif level > target:
                result = current
            else:
                result = self.make_node(level, walk(low), walk(high))
            cache[current] = result
            return result

        return walk(node)

    # -- semantics ---------------------------------------------------------------

    def evaluate(self, node: int, valuation: Mapping[Hashable, bool]) -> bool:
        current = node
        while current > TRUE_NODE:
            level, low, high = self._nodes[current]
            variable = self._order[level]
            current = high if valuation.get(variable, False) else low
        return current == TRUE_NODE

    def probability(self, node: int, probabilities: Mapping[Hashable, Fraction | float]) -> Fraction:
        """Exact probability that the function is true under independent variables."""
        probs = {v: Fraction(p) if not isinstance(p, Fraction) else p for v, p in probabilities.items()}
        cache: dict[int, Fraction] = {FALSE_NODE: Fraction(0), TRUE_NODE: Fraction(1)}

        def walk(current: int) -> Fraction:
            if current in cache:
                return cache[current]
            level, low, high = self._nodes[current]
            variable = self._order[level]
            if variable not in probs:
                raise LineageError(f"missing probability for variable {variable!r}")
            p = probs[variable]
            result = p * walk(high) + (1 - p) * walk(low)
            cache[current] = result
            return result

        return walk(node)

    def model_count(self, node: int) -> int:
        """Number of satisfying assignments over the *full* variable order."""
        n = len(self._order)
        cache: dict[int, int] = {}

        def walk(current: int, level: int) -> int:
            if current == FALSE_NODE:
                return 0
            if current == TRUE_NODE:
                return 1 << (n - level)
            node_level = self._nodes[current][0]
            key = current
            if key in cache:
                return cache[key] << (node_level - level)
            _, low, high = self._nodes[current]
            count = walk(low, node_level + 1) + walk(high, node_level + 1)
            cache[key] = count
            return count << (node_level - level)

        return walk(node, 0)

    # -- measurements --------------------------------------------------------------

    def reachable_nodes(self, node: int) -> set[int]:
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen or current <= TRUE_NODE:
                continue
            seen.add(current)
            _, low, high = self._nodes[current]
            stack.extend((low, high))
        return seen

    def size(self, node: int) -> int:
        """Number of decision nodes reachable from ``node`` (terminals excluded)."""
        return len(self.reachable_nodes(node))

    def width(self, node: int) -> int:
        """The width of the OBDD rooted at ``node`` (Definition 6.4).

        The level of a node is the index of its variable in the order; the
        width is the maximum, over levels, of the number of *distinct
        subfunctions* reachable after fixing the variables of a strict prefix
        of the order.  For a reduced OBDD this equals, for each prefix length
        L, the number of distinct nodes (or terminals) reached by following
        all valuations of the first L variables — equivalently the number of
        reduced nodes whose variable level is >= L that have an incoming edge
        from a node of level < L (plus the root when its level >= L).  We
        compute it by a sweep over the levels.
        """
        if node <= TRUE_NODE:
            return 1
        reachable = self.reachable_nodes(node)
        # edges[(source_level, target)] — for each decision node, where its children land
        cut_counts: dict[int, set[int]] = {}
        n = len(self._order)

        def landing(target: int) -> int:
            return self._nodes[target][0] if target > TRUE_NODE else n

        # The function "live" at cut L (between variable L-1 and L) is given by
        # the set of nodes that are landing points of edges crossing the cut,
        # plus the root if its level >= L... A node "target" is live at cut L if
        # some edge (source -> target) has source_level < L <= landing(target),
        # or target is the root and L <= landing(root).
        incoming: list[tuple[int, int]] = []  # (source_level, target)
        for current in reachable:
            level, low, high = self._nodes[current]
            incoming.append((level, low))
            incoming.append((level, high))
        width = 1
        root_landing = landing(node)
        for cut in range(1, n + 1):
            live: set[int] = set()
            if cut <= root_landing:
                live.add(node)
            for source_level, target in incoming:
                if source_level < cut <= landing(target):
                    live.add(target)
            width = max(width, len(live))
        return width

    def node_table(self, node: int) -> list[tuple[int, Hashable, int, int]]:
        """A readable dump of the reachable nodes: (id, variable, low, high)."""
        return [
            (current, self._order[self._nodes[current][0]], self._nodes[current][1], self._nodes[current][2])
            for current in sorted(self.reachable_nodes(node))
        ]

    def __repr__(self) -> str:
        return f"OBDD(order of {len(self._order)} variables, {len(self._nodes) - 2} nodes allocated)"

    # -- building from other representations -----------------------------------------

    def build_from_circuit(self, circuit) -> int:
        """Compile a :class:`BooleanCircuit` bottom-up with ``apply``.

        Every circuit variable must appear in this OBDD's order.  Returns the
        root node of the compiled function.
        """
        from repro.booleans.circuit import GateKind

        if circuit.output is None:
            raise CompilationError("circuit has no output gate")
        missing = set(circuit.variables()) - set(self._order)
        if missing:
            raise CompilationError(f"circuit variables missing from OBDD order: {sorted(map(repr, missing))[:3]}")
        values: dict[int, int] = {}
        for gate_id in circuit.reachable_gates():
            gate = circuit.gate(gate_id)
            if gate.kind is GateKind.VAR:
                values[gate_id] = self.literal(gate.payload)
            elif gate.kind is GateKind.CONST:
                values[gate_id] = self.terminal(bool(gate.payload))
            elif gate.kind is GateKind.NOT:
                values[gate_id] = self.apply_not(values[gate.inputs[0]])
            elif gate.kind is GateKind.AND:
                values[gate_id] = self.conjunction(values[i] for i in gate.inputs)
            else:
                values[gate_id] = self.disjunction(values[i] for i in gate.inputs)
        self.root = values[circuit.output]
        return self.root

    def build_from_clauses(self, clauses: Iterable[Iterable[Hashable]]) -> int:
        """Compile a monotone DNF given as an iterable of variable sets."""
        terms = []
        for clause in clauses:
            terms.append(self.conjunction(self.literal(v) for v in clause))
        self.root = self.disjunction(terms)
        return self.root


def minimal_obdd_width(
    variables: Sequence[Hashable],
    build: Callable[[OBDD], int],
    orders: Iterable[Sequence[Hashable]] | None = None,
) -> int:
    """The minimum OBDD width of a function over a set of candidate orders.

    ``build`` receives a fresh OBDD manager and must return the root node of
    the function in that manager.  By default all permutations of the
    variables are tried (factorial; tiny variable counts only).
    """
    import itertools

    if orders is None:
        orders = itertools.permutations(list(variables))
    best: int | None = None
    for order in orders:
        manager = OBDD(list(order))
        root = build(manager)
        width = manager.width(root)
        if best is None or width < best:
            best = width
    if best is None:
        raise CompilationError("no candidate variable orders supplied")
    return best
