"""Columnar (structure-of-arrays) OBDD kernels.

The object kernels of :mod:`repro.booleans.obdd` keep one Python tuple per
decision node inside a manager; that representation is ideal for *building*
diagrams (hash-consing, ``apply`` caches) but wrong for *shipping* and
*sweeping* them: pickling a node graph across a process boundary costs a
traversal plus one object per node on the far side, and cyclic-GC passes
rescan every cached node forever.

A :class:`ColumnarOBDD` is the compiled artifact flattened into three parallel
``int64`` columns::

    var[i]  level (index into ``order``) tested by node id ``i + 2``
    lo[i]   id of the low child of node id ``i + 2``
    hi[i]   id of the high child of node id ``i + 2``

Ids ``0`` and ``1`` are the FALSE/TRUE terminals, exactly as in the object
manager.  Decision nodes are stored **sorted by level, deepest first**, so
every child id is strictly smaller than its parent id and ascending-id order
is a topological order; nodes at one level occupy one contiguous slice, which
is what makes level-at-a-time vectorized passes possible.

Two arithmetic regimes, mirroring the object sweep's contract:

* ``exact=True`` (default) computes probabilities as
  :class:`~fractions.Fraction` and model counts as Python integers in plain
  loops *over the columns* — no node objects, no recursion, exact end to end;
* ``exact=False`` runs the vectorized float fast path: one fused numpy gather
  per level, with the same degeneracy fallback (non-finite or out-of-range
  results rerun the exact kernel) and sub-tolerance clamping as
  :meth:`repro.booleans.obdd.OBDD.sweep`.

The columns round-trip losslessly to the object representation
(:func:`columnar_from_obdd` / :meth:`ColumnarOBDD.to_obdd`) and to a single
contiguous byte buffer (:meth:`ColumnarOBDD.write_into` /
:func:`columnar_from_buffer`), which is how
:mod:`repro.engine.shm` ships artifacts through
``multiprocessing.shared_memory`` segments that workers attach to zero-copy.

numpy is optional: :func:`array_backend` returns ``None`` when numpy is
missing (or ``REPRO_NO_NUMPY=1`` forces the fallback), and every kernel then
runs on :mod:`array`-module columns with pure-Python loops — same results,
no third-party dependency.
"""

from __future__ import annotations

import math
import os
import weakref
from array import array
from fractions import Fraction
from typing import Any, Hashable, Mapping, Sequence

from repro import resilience as _resilience
from repro.booleans.obdd import FALSE_NODE, OBDD, TRUE_NODE, SweepResult
from repro.errors import CompilationError, LineageError

_ITEM = "q"  # signed 64-bit entries, matching numpy int64
_ITEMSIZE = 8

# Scalar-pass iterations between wall-clock checkpoints under an active
# budget (the vectorized passes checkpoint once per level instead).
_CHECKPOINT_STRIDE = 4096


def array_backend():
    """The numpy module when usable, else ``None`` (array-module fallback).

    ``REPRO_NO_NUMPY=1`` forces the fallback even when numpy is installed —
    CI uses it to exercise the pure-Python columns.
    """
    if os.environ.get("REPRO_NO_NUMPY") == "1":
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
        return None
    return numpy


def _check_topology(order, var, lo, hi, numpy_module) -> None:
    """Reject columns that break the sorted-layout contract.

    The sweeps index ``values[lo]``/``values[hi]`` without bounds checks and
    the level slicer assumes one contiguous run per level, so columns that
    arrive from an untrusted buffer (a shared-memory segment written by
    another process) must be rejected here, not deep inside a later pass.
    """
    n = len(var)
    if n == 0:
        return
    if numpy_module is not None:
        np = numpy_module
        ids = np.arange(2, n + 2)
        levels_ok = bool(((var >= 0) & (var < len(order))).all())
        sorted_ok = bool((var[1:] <= var[:-1]).all())
        children_ok = bool(
            ((lo >= 0) & (lo < ids) & (hi >= 0) & (hi < ids)).all()
        )
    else:
        levels_ok = all(0 <= level < len(order) for level in var)
        sorted_ok = all(var[i + 1] <= var[i] for i in range(n - 1))
        children_ok = all(
            0 <= lo[i] < i + 2 and 0 <= hi[i] < i + 2 for i in range(n)
        )
    if not levels_ok:
        raise CompilationError("columnar OBDD level column exceeds the variable order")
    if not sorted_ok:
        raise CompilationError("columnar OBDD nodes must be sorted by descending level")
    if not children_ok:
        raise CompilationError(
            "columnar OBDD child ids must be smaller than their parent's id"
        )


def _as_column(values: Sequence[int], numpy_module) -> Any:
    if numpy_module is not None:
        return numpy_module.asarray(values, dtype=numpy_module.int64)
    if isinstance(values, array) and values.typecode == _ITEM:
        return values
    return array(_ITEM, values)


class ColumnarOBDD:
    """A reduced OBDD flattened into parallel ``var``/``lo``/``hi`` columns.

    Instances are immutable compiled artifacts: the columns describe exactly
    the nodes reachable from ``root`` (so ``size`` is their length), and the
    measurement API mirrors :class:`repro.provenance.compile_obdd.CompiledOBDD`
    — ``size``/``width`` properties, ``model_count()``, ``probability()``,
    ``evaluate()`` — so the two artifact kinds are interchangeable downstream.
    """

    __slots__ = ("order", "var", "lo", "hi", "root", "_stats", "_retain")

    def __init__(
        self,
        order: Sequence[Hashable],
        var: Sequence[int],
        lo: Sequence[int],
        hi: Sequence[int],
        root: int,
        retain: Any = None,
    ) -> None:
        if not (len(var) == len(lo) == len(hi)):
            raise CompilationError("columnar OBDD columns must have equal lengths")
        if not (0 <= root < len(var) + 2):
            raise CompilationError(f"columnar OBDD root {root} out of range")
        numpy_module = array_backend()
        self.order = tuple(order)
        self.var = _as_column(var, numpy_module)
        self.lo = _as_column(lo, numpy_module)
        self.hi = _as_column(hi, numpy_module)
        _check_topology(self.order, self.var, self.lo, self.hi, numpy_module)
        self.root = int(root)
        self._stats: SweepResult | None = None
        # Keeps the memory owner (e.g. a SharedMemory mapping) alive while
        # numpy views into it exist.
        self._retain = retain

    # -- basic shape -----------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.var)

    def __len__(self) -> int:
        return len(self.var)

    def __repr__(self) -> str:
        backend = "numpy" if array_backend() is not None else "array"
        return (
            f"ColumnarOBDD({len(self.var)} nodes over {len(self.order)} variables, "
            f"root {self.root}, {backend} columns)"
        )

    def level_of(self, variable: Hashable) -> int:
        try:
            return self.order.index(variable)
        except ValueError:
            raise LineageError(f"variable {variable!r} not in the columnar order") from None

    def _level_slices(self) -> list[tuple[int, int, int]]:
        """Contiguous ``(level, start, stop)`` runs of the level-sorted columns."""
        var = self.var
        n = len(var)
        slices: list[tuple[int, int, int]] = []
        start = 0
        while start < n:
            level = var[start]
            stop = start + 1
            while stop < n and var[stop] == level:
                stop += 1
            slices.append((int(level), start, stop))
            start = stop
        return slices

    # -- semantics -------------------------------------------------------------

    def evaluate(self, valuation: Mapping[Hashable, bool]) -> bool:
        current = self.root
        var, lo, hi, order = self.var, self.lo, self.hi, self.order
        while current > TRUE_NODE:
            index = current - 2
            variable = order[var[index]]
            current = int(hi[index] if valuation.get(variable, False) else lo[index])
        return current == TRUE_NODE

    # -- the fused columnar sweep ----------------------------------------------

    def sweep(
        self,
        probabilities: Mapping[Hashable, Fraction | float] | None = None,
        *,
        model_count: bool = False,
        width: bool = False,
        exact: bool = True,
    ) -> SweepResult:
        """Probability, model count, size, and width over the columns.

        The exact regime (`exact=True`) is Fraction/integer arithmetic in
        ascending-id passes; the float regime is the vectorized
        level-at-a-time fast path with the object sweep's degeneracy fallback
        and clamping, so callers always see a float inside ``[0, 1]``.
        """
        result = self._sweep_impl(probabilities, model_count, width, exact)
        if not exact and result.probability is not None:
            value = result.probability
            if not (math.isfinite(value) and -1e-9 <= value <= 1 + 1e-9):
                fallback = self._sweep_impl(probabilities, model_count, width, True)
                result = SweepResult(
                    size=fallback.size,
                    probability=float(fallback.probability),
                    model_count=fallback.model_count,
                    width=fallback.width,
                )
            elif not 0.0 <= value <= 1.0:
                result = SweepResult(
                    size=result.size,
                    probability=min(max(value, 0.0), 1.0),
                    model_count=result.model_count,
                    width=result.width,
                )
        return result

    def _level_probability(
        self, probabilities: Mapping[Hashable, Fraction | float], level: int, exact: bool
    ) -> Fraction | float:
        variable = self.order[level]
        if variable not in probabilities:
            raise LineageError(f"missing probability for variable {variable!r}")
        raw = probabilities[variable]
        if exact:
            return raw if isinstance(raw, Fraction) else Fraction(raw)
        return float(raw)

    def _sweep_impl(
        self,
        probabilities: Mapping[Hashable, Fraction | float] | None,
        want_count: bool,
        want_width: bool,
        exact: bool,
    ) -> SweepResult:
        n_vars = len(self.order)
        n = len(self.var)
        want_probability = probabilities is not None
        if self.root <= TRUE_NODE:
            is_true = self.root == TRUE_NODE
            probability: Fraction | float | None = None
            if want_probability:
                probability = Fraction(1 if is_true else 0) if exact else float(is_true)
            return SweepResult(
                size=0,
                probability=probability,
                model_count=((1 << n_vars) if is_true else 0) if want_count else None,
                width=1 if want_width else None,
            )

        probability_value: Fraction | float | None = None
        if want_probability:
            numpy_module = array_backend()
            if exact or numpy_module is None:
                probability_value = self._probability_pass(probabilities, exact)
            else:
                probability_value = self._probability_vectorized(numpy_module, probabilities)

        model_count_value: int | None = None
        if want_count:
            model_count_value = self._model_count_pass(n_vars)

        width_value: int | None = None
        if want_width:
            width_value = self._width_pass(n_vars)

        return SweepResult(
            size=n,
            probability=probability_value,
            model_count=model_count_value,
            width=width_value,
        )

    def _probability_pass(
        self, probabilities: Mapping[Hashable, Fraction | float], exact: bool
    ) -> Fraction | float:
        """Ascending-id probability pass over the columns (children first)."""
        var, lo, hi = self.var, self.lo, self.hi
        one: Fraction | float = Fraction(1) if exact else 1.0
        zero: Fraction | float = Fraction(0) if exact else 0.0
        values: list[Fraction | float] = [zero, one] + [zero] * len(var)
        prob_of_level: dict[int, Fraction | float] = {}
        budget = _resilience.ACTIVE
        countdown = _CHECKPOINT_STRIDE
        for index in range(len(var)):
            if budget is not None:
                countdown -= 1
                if countdown == 0:
                    countdown = _CHECKPOINT_STRIDE
                    budget.checkpoint()
            level = var[index]
            p = prob_of_level.get(level)
            if p is None:
                p = self._level_probability(probabilities, int(level), exact)
                prob_of_level[level] = p
            values[index + 2] = p * values[hi[index]] + (1 - p) * values[lo[index]]
        return values[self.root]

    def _probability_vectorized(
        self, numpy_module, probabilities: Mapping[Hashable, Fraction | float]
    ) -> float:
        """One fused gather per level: ``v[nodes] = p*v[hi] + (1-p)*v[lo]``."""
        np = numpy_module
        budget = _resilience.ACTIVE
        values = np.empty(len(self.var) + 2, dtype=np.float64)
        values[FALSE_NODE] = 0.0
        values[TRUE_NODE] = 1.0
        for level, start, stop in self._level_slices():
            if budget is not None:
                budget.checkpoint()
            p = self._level_probability(probabilities, level, exact=False)
            values[start + 2 : stop + 2] = p * values[self.hi[start:stop]] + (1.0 - p) * values[
                self.lo[start:stop]
            ]
        return float(values[self.root])

    def _model_count_pass(self, n_vars: int) -> int:
        """Exact model count over the full order, in Python integers."""
        var, lo, hi = self.var, self.lo, self.hi
        counts: list[int] = [0, 1] + [0] * len(var)
        landing: list[int] = [n_vars, n_vars] + [int(level) for level in var]
        budget = _resilience.ACTIVE
        countdown = _CHECKPOINT_STRIDE
        for index in range(len(var)):
            if budget is not None:
                countdown -= 1
                if countdown == 0:
                    countdown = _CHECKPOINT_STRIDE
                    budget.checkpoint()
            level = var[index]
            low, high = lo[index], hi[index]
            counts[index + 2] = (counts[low] << (landing[low] - level - 1)) + (
                counts[high] << (landing[high] - level - 1)
            )
        return counts[self.root] << landing[self.root]

    def _width_pass(self, n_vars: int) -> int:
        """Interval-counted width (Definition 6.4), as in the object sweep."""
        var, lo, hi = self.var, self.lo, self.hi
        sentinel = n_vars + 1
        min_source: list[int] = [sentinel] * (len(var) + 2)
        for index in range(len(var)):
            level = var[index]
            for child in (lo[index], hi[index]):
                if level < min_source[child]:
                    min_source[child] = level
        landing: list[int] = [n_vars, n_vars] + [int(level) for level in var]
        delta = [0] * (n_vars + 2)
        root_level = landing[self.root]
        delta[1] += 1
        delta[root_level + 1] -= 1
        for target in range(len(var) + 2):
            source_level = min_source[target]
            if source_level == sentinel:
                continue
            if source_level + 1 <= landing[target]:
                delta[source_level + 1] += 1
                delta[landing[target] + 1] -= 1
        width_value = 1
        live = 0
        for cut in range(1, n_vars + 1):
            live += delta[cut]
            if live > width_value:
                width_value = live
        return width_value

    # -- the compiled-artifact API (CompiledOBDD-compatible) -------------------

    def stats(self) -> SweepResult:
        """Size, width, and model count from one (cached) columnar sweep."""
        if self._stats is None:
            self._stats = self.sweep(model_count=True, width=True)
        return self._stats

    @property
    def size(self) -> int:
        return len(self.var)

    @property
    def width(self) -> int:
        return self.stats().width

    def model_count(self) -> int:
        return self.stats().model_count

    def probability(
        self, probabilities: Mapping[Hashable, Fraction | float], exact: bool = True
    ) -> Fraction | float:
        """Exact Fraction by default; the vectorized float fast path when
        ``exact=False`` (with the exact fallback on degeneracy)."""
        return self.sweep(probabilities, exact=exact).probability

    def probability_many(
        self,
        probability_maps: Sequence[Mapping[Hashable, Fraction | float]],
        exact: bool = True,
    ) -> list[Fraction | float]:
        """Probabilities under many weightings — the batch re-weighting kernel.

        The exact regime (and the no-numpy fallback) runs one sweep per map.
        The float regime runs *one* matrix dynamic program over a
        ``(nodes, assignments)`` value plane: all dictionary work is hoisted
        into a single ``(levels, assignments)`` weight matrix up front, and
        the per-level update is one fused gather over the whole batch — this
        is where the columnar layout beats the object kernel even on narrow
        diagrams, because the per-level overhead amortizes across the batch.
        Degenerate columns (non-finite or outside ``[0, 1]``) fall back to
        the exact kernel individually, as in :meth:`sweep`.
        """
        maps = list(probability_maps)
        numpy_module = array_backend()
        if exact or numpy_module is None or not maps:
            return [self.probability(weights, exact=exact) for weights in maps]
        np = numpy_module
        batch = len(maps)
        if self.root <= TRUE_NODE:
            return [1.0 if self.root == TRUE_NODE else 0.0] * batch
        slices = self._level_slices()
        weight_rows = np.empty((len(slices), batch), dtype=np.float64)
        for row, (level, _, _) in enumerate(slices):
            for column, weights in enumerate(maps):
                weight_rows[row, column] = self._level_probability(weights, level, False)
        values = np.empty((len(self.var) + 2, batch), dtype=np.float64)
        values[FALSE_NODE] = 0.0
        values[TRUE_NODE] = 1.0
        lo, hi = self.lo, self.hi
        budget = _resilience.ACTIVE
        for row, (_, start, stop) in enumerate(slices):
            if budget is not None:
                budget.checkpoint()
            p = weight_rows[row]
            values[start + 2 : stop + 2] = (
                p * values[hi[start:stop]] + (1.0 - p) * values[lo[start:stop]]
            )
        out = values[self.root]
        results: list[Fraction | float] = []
        for column in range(batch):
            value = float(out[column])
            if not (math.isfinite(value) and -1e-9 <= value <= 1 + 1e-9):
                results.append(float(self.probability(maps[column], exact=True)))
            else:
                results.append(min(max(value, 0.0), 1.0))
        return results

    # -- lossless adapters -----------------------------------------------------

    def to_obdd(self) -> "tuple[OBDD, int]":
        """Rebuild an object manager holding exactly this diagram.

        Ascending-id order processes children before parents, so every
        ``make_node`` call sees already-rebuilt children; the reduced unique
        table reproduces the same diagram (adapters are lossless both ways).
        """
        manager = OBDD(self.order)
        mapping: list[int] = [FALSE_NODE, TRUE_NODE] + [0] * len(self.var)
        for index in range(len(self.var)):
            mapping[index + 2] = manager.make_node(
                int(self.var[index]), mapping[self.lo[index]], mapping[self.hi[index]]
            )
        manager.root = mapping[self.root]
        return manager, manager.root

    def copy(self) -> "ColumnarOBDD":
        """A deep copy owning private columns (detached from shared memory)."""
        return ColumnarOBDD(
            self.order, list(self.var), list(self.lo), list(self.hi), self.root
        )

    # -- flat-buffer packing ---------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Bytes needed by :meth:`write_into`: three int64 columns."""
        return 3 * len(self.var) * _ITEMSIZE

    def write_into(self, buffer) -> None:
        """Serialize the columns into a writable buffer as ``var|lo|hi``."""
        n = len(self.var)
        view = memoryview(buffer)
        if len(view) < self.nbytes:
            raise CompilationError("buffer too small for the columnar OBDD")
        for position, column in enumerate((self.var, self.lo, self.hi)):
            chunk = view[position * n * _ITEMSIZE : (position + 1) * n * _ITEMSIZE]
            chunk[:] = _column_bytes(column)

    def meta(self) -> dict[str, Any]:
        """The picklable sidecar needed to reattach a packed buffer."""
        return {"node_count": len(self.var), "root": self.root, "order": self.order}


def _column_bytes(column) -> bytes:
    if isinstance(column, array):
        return column.tobytes()
    return column.tobytes()  # numpy


#: Memory owners whose close raced a still-exported buffer.  The finalizer
#: below runs *during* the flat array's deallocation — before the array
#: releases its buffer export — so the first close attempt can fail; parking
#: the owner here keeps it alive (its destructor must not run against live
#: exports either) and the next columnar call retires it, by which point the
#: export is long gone.
_DEFERRED_RELEASE: list[Any] = []


def _drain_deferred_releases() -> None:
    still_exported = []
    for owner in _DEFERRED_RELEASE:
        try:
            owner.close()
        except BufferError:  # pragma: no cover - an export is somehow alive
            still_exported.append(owner)
    _DEFERRED_RELEASE[:] = still_exported


def _release_retained(owner: Any) -> None:
    """Close a retained memory owner (e.g. a SharedMemory mapping) quietly."""
    _drain_deferred_releases()
    close = getattr(owner, "close", None)
    if close is None:
        return
    try:
        close()
    except BufferError:
        _DEFERRED_RELEASE.append(owner)


def columnar_from_buffer(meta: Mapping[str, Any], buffer, retain: Any = None) -> ColumnarOBDD:
    """Reconstruct a :class:`ColumnarOBDD` from a packed ``var|lo|hi`` buffer.

    With numpy available the columns are **views** into ``buffer`` (zero
    copy); ``retain`` (e.g. the owning ``SharedMemory`` mapping) is kept
    alive on the artifact for as long as those views exist.  The fallback
    backend copies into :mod:`array` columns.
    """
    n = int(meta["node_count"])
    root = int(meta["root"])
    order = tuple(meta["order"])
    numpy_module = array_backend()
    _drain_deferred_releases()
    if numpy_module is not None:
        flat = numpy_module.frombuffer(buffer, dtype=numpy_module.int64, count=3 * n)
        if retain is not None:
            # Release the memory owner only once the last view over ``flat``
            # is gone: the finalizer's argument keeps it alive until then,
            # and closing after all views died cannot hit "exported pointers
            # exist".  (Slot teardown order alone cannot guarantee this.)
            weakref.finalize(flat, _release_retained, retain)
        columns = (flat[:n], flat[n : 2 * n], flat[2 * n : 3 * n])
        return ColumnarOBDD(order, *columns, root=root, retain=retain)
    view = memoryview(buffer)
    columns = []
    for position in range(3):
        chunk = array(_ITEM)
        chunk.frombytes(view[position * n * _ITEMSIZE : (position + 1) * n * _ITEMSIZE])
        columns.append(chunk)
    return ColumnarOBDD(order, *columns, root=root)


def columnar_from_obdd(
    manager: OBDD, root: int, order: Sequence[Hashable] | None = None
) -> ColumnarOBDD:
    """Flatten the diagram rooted at ``root`` into level-sorted columns.

    Only the reachable nodes are kept; they are renumbered by descending
    level (ties broken by original id, so the layout is deterministic for a
    given manager state), which gives the contiguous level runs the
    vectorized sweeps rely on.
    """
    if order is None:
        order = manager.variable_order
    reachable = sorted(manager.reachable_nodes(root))
    levels = {node: manager._nodes[node][0] for node in reachable}
    ordered = sorted(reachable, key=lambda node: (-levels[node], node))
    mapping = {FALSE_NODE: FALSE_NODE, TRUE_NODE: TRUE_NODE}
    for position, node in enumerate(ordered):
        mapping[node] = position + 2
    var: list[int] = []
    lo: list[int] = []
    hi: list[int] = []
    for node in ordered:
        level, low, high = manager._nodes[node]
        var.append(level)
        lo.append(mapping[low])
        hi.append(mapping[high])
    return ColumnarOBDD(order, var, lo, hi, mapping[root])
