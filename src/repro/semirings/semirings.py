"""Commutative semirings for provenance evaluation.

A commutative semiring (K, +, *, 0, 1) has two associative and commutative
operations with identities 0 and 1, * distributing over +, and 0 annihilating
for *.  Provenance semirings additionally interpret + as "alternative use of
facts" and * as "joint use of facts" (Green et al., PODS 2007).

The classical examples shipped here:

=============  =====================  ===========================  =========
Name           Carrier                (+, *)                       Use
=============  =====================  ===========================  =========
``BOOLEAN``    {False, True}          (or, and)                    lineage / PosBool[X] after valuation
``COUNTING``   natural numbers        (+, *)                       number of derivations (bag semantics)
``TROPICAL``   N ∪ {∞}                (min, +)                     cost of the cheapest derivation
``VITERBI``    [0, 1]                 (max, *)                     confidence of the best derivation
``SECURITY``   clearance levels       (min, max)                   minimum clearance needed
``WHY``        sets of fact sets      (∪, pairwise ∪)              why-provenance (witness sets)
``N[X]``       provenance polynomials (poly +, poly *)             most general (universal) provenance
=============  =====================  ===========================  =========
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Generic, Hashable, Iterable, TypeVar

K = TypeVar("K")


@dataclass(frozen=True)
class Semiring(Generic[K]):
    """A commutative semiring given by its two operations and identities.

    ``name`` is informational; ``is_idempotent_plus`` records whether
    ``a + a == a`` (used by tests and by algorithms that may exploit
    absorption).
    """

    name: str
    zero: K
    one: K
    plus: Callable[[K, K], K]
    times: Callable[[K, K], K]
    is_idempotent_plus: bool = False

    def sum(self, values: Iterable[K]) -> K:
        result = self.zero
        for value in values:
            result = self.plus(result, value)
        return result

    def product(self, values: Iterable[K]) -> K:
        result = self.one
        for value in values:
            result = self.times(result, value)
        return result

    def __repr__(self) -> str:
        return f"Semiring({self.name})"


BOOLEAN: Semiring[bool] = Semiring(
    name="Boolean",
    zero=False,
    one=True,
    plus=lambda a, b: a or b,
    times=lambda a, b: a and b,
    is_idempotent_plus=True,
)

COUNTING: Semiring[int] = Semiring(
    name="Counting",
    zero=0,
    one=1,
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
)

TROPICAL: Semiring[float] = Semiring(
    name="Tropical",
    zero=math.inf,
    one=0.0,
    plus=min,
    times=lambda a, b: a + b,
    is_idempotent_plus=True,
)

VITERBI: Semiring[float] = Semiring(
    name="Viterbi",
    zero=0.0,
    one=1.0,
    plus=max,
    times=lambda a, b: a * b,
    is_idempotent_plus=True,
)

# Security semiring over integer clearance levels: 0 = public (most permissive),
# larger = more restricted; "+" keeps the least restrictive alternative and "*"
# needs the most restrictive of the jointly used facts.
SECURITY: Semiring[int] = Semiring(
    name="Security",
    zero=10**9,
    one=0,
    plus=min,
    times=max,
    is_idempotent_plus=True,
)


def _why_plus(left: frozenset, right: frozenset) -> frozenset:
    return left | right


def _why_times(left: frozenset, right: frozenset) -> frozenset:
    return frozenset(a | b for a in left for b in right)


WHY: Semiring[frozenset] = Semiring(
    name="Why",
    zero=frozenset(),
    one=frozenset({frozenset()}),
    plus=_why_plus,
    times=_why_times,
    is_idempotent_plus=True,
)


def why_provenance(witnesses: Iterable[Iterable[Hashable]]) -> frozenset:
    """A Why-semiring value from an iterable of witness fact sets."""
    return frozenset(frozenset(witness) for witness in witnesses)


def polynomial_semiring() -> "Semiring":
    """The free provenance semiring N[X] over monomials on fact variables.

    Values are :class:`repro.semirings.polynomials.ProvenancePolynomial`
    instances.  N[X] is universal: any assignment of the variables into a
    commutative semiring K extends uniquely to a homomorphism N[X] -> K
    (see :meth:`ProvenancePolynomial.specialize`).
    """
    from repro.semirings.polynomials import ProvenancePolynomial

    return Semiring(
        name="N[X]",
        zero=ProvenancePolynomial.zero(),
        one=ProvenancePolynomial.one(),
        plus=lambda a, b: a + b,
        times=lambda a, b: a * b,
    )


def check_semiring_laws(
    semiring: Semiring[K], samples: Iterable[K], equal: Callable[[K, K], bool] | None = None
) -> None:
    """Check the commutative-semiring axioms on a finite sample of values.

    Raises :class:`AssertionError` on the first violated law.  Used by the
    test suite (including property-based tests) to validate both the built-in
    semirings and user-defined ones.
    """
    values = list(samples)
    eq = equal if equal is not None else (lambda a, b: a == b)
    zero, one = semiring.zero, semiring.one
    plus, times = semiring.plus, semiring.times
    for a in values:
        assert eq(plus(a, zero), a), f"{semiring.name}: 0 is not neutral for +"
        assert eq(times(a, one), a), f"{semiring.name}: 1 is not neutral for *"
        assert eq(times(a, zero), zero), f"{semiring.name}: 0 does not annihilate"
        for b in values:
            assert eq(plus(a, b), plus(b, a)), f"{semiring.name}: + not commutative"
            assert eq(times(a, b), times(b, a)), f"{semiring.name}: * not commutative"
            for c in values:
                assert eq(
                    plus(plus(a, b), c), plus(a, plus(b, c))
                ), f"{semiring.name}: + not associative"
                assert eq(
                    times(times(a, b), c), times(a, times(b, c))
                ), f"{semiring.name}: * not associative"
                assert eq(
                    times(a, plus(b, c)), plus(times(a, b), times(a, c))
                ), f"{semiring.name}: * does not distribute over +"
