"""Provenance polynomials: the free commutative semiring N[X].

A provenance polynomial is a finite sum of monomials with natural-number
coefficients, each monomial being a finite multiset of fact variables.  N[X]
is the most informative provenance annotation: every other commutative
semiring annotation is obtained from it by specialising the variables
(universality, Green et al. 2007).

The polynomial of a UCQ on an instance has one monomial per homomorphism
image (with multiplicities); its specialisation to the Boolean semiring under
a world valuation is exactly the lineage of Definition 6.1 for monotone
queries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.errors import LineageError


@dataclass(frozen=True)
class Monomial:
    """A multiset of variables, e.g. ``x^2 * y`` as ``Monomial({x: 2, y: 1})``."""

    powers: tuple[tuple[Hashable, int], ...]

    @classmethod
    def of(cls, variables: Iterable[Hashable] | Mapping[Hashable, int]) -> "Monomial":
        if isinstance(variables, Mapping):
            counts = Counter(dict(variables))
        else:
            counts = Counter(variables)
        for variable, power in counts.items():
            if power <= 0:
                raise LineageError(f"monomial power for {variable!r} must be positive")
        return cls(tuple(sorted(counts.items(), key=lambda item: repr(item[0]))))

    @classmethod
    def unit(cls) -> "Monomial":
        return cls(())

    @property
    def degree(self) -> int:
        return sum(power for _, power in self.powers)

    def variables(self) -> frozenset:
        return frozenset(variable for variable, _ in self.powers)

    def __mul__(self, other: "Monomial") -> "Monomial":
        counts = Counter(dict(self.powers))
        counts.update(dict(other.powers))
        return Monomial(tuple(sorted(counts.items(), key=lambda item: repr(item[0]))))

    def __str__(self) -> str:
        if not self.powers:
            return "1"
        parts = []
        for variable, power in self.powers:
            parts.append(str(variable) if power == 1 else f"{variable}^{power}")
        return "*".join(parts)


@dataclass(frozen=True)
class ProvenancePolynomial:
    """An element of N[X]: a sum of monomials with positive integer coefficients."""

    terms: tuple[tuple[Monomial, int], ...]

    @classmethod
    def zero(cls) -> "ProvenancePolynomial":
        return cls(())

    @classmethod
    def one(cls) -> "ProvenancePolynomial":
        return cls(((Monomial.unit(), 1),))

    @classmethod
    def variable(cls, name: Hashable) -> "ProvenancePolynomial":
        return cls(((Monomial.of([name]), 1),))

    @classmethod
    def from_terms(
        cls, terms: Iterable[tuple[Monomial, int]]
    ) -> "ProvenancePolynomial":
        counts: Counter[Monomial] = Counter()
        for monomial, coefficient in terms:
            if coefficient < 0:
                raise LineageError("N[X] coefficients must be non-negative")
            if coefficient:
                counts[monomial] += coefficient
        ordered = sorted(counts.items(), key=lambda item: (item[0].degree, str(item[0])))
        return cls(tuple(ordered))

    # -- algebra ----------------------------------------------------------------

    def __add__(self, other: "ProvenancePolynomial") -> "ProvenancePolynomial":
        return ProvenancePolynomial.from_terms(list(self.terms) + list(other.terms))

    def __mul__(self, other: "ProvenancePolynomial") -> "ProvenancePolynomial":
        products = []
        for left_monomial, left_coefficient in self.terms:
            for right_monomial, right_coefficient in other.terms:
                products.append(
                    (left_monomial * right_monomial, left_coefficient * right_coefficient)
                )
        return ProvenancePolynomial.from_terms(products)

    def is_zero(self) -> bool:
        return not self.terms

    @property
    def monomial_count(self) -> int:
        return len(self.terms)

    def total_degree(self) -> int:
        return max((monomial.degree for monomial, _ in self.terms), default=0)

    def coefficient_of(self, monomial: Monomial) -> int:
        for candidate, coefficient in self.terms:
            if candidate == monomial:
                return coefficient
        return 0

    def variables(self) -> frozenset:
        result: frozenset = frozenset()
        for monomial, _ in self.terms:
            result |= monomial.variables()
        return result

    # -- universality -------------------------------------------------------------

    def specialize(self, semiring, valuation: Mapping[Hashable, object]):
        """Evaluate the polynomial in ``semiring`` under a variable valuation.

        This is the unique semiring homomorphism N[X] -> K extending the
        valuation; coefficients and exponents are expanded with repeated sums
        and products, so no extra structure is required of K.
        """
        total = semiring.zero
        for monomial, coefficient in self.terms:
            factor = semiring.one
            for variable, power in monomial.powers:
                if variable not in valuation:
                    raise LineageError(f"valuation missing variable {variable!r}")
                for _ in range(power):
                    factor = semiring.times(factor, valuation[variable])
            term = semiring.zero
            for _ in range(coefficient):
                term = semiring.plus(term, factor)
            total = semiring.plus(total, term)
        return total

    def to_boolean_lineage(self, world: Mapping[Hashable, bool]) -> bool:
        """The Boolean specialisation: is some monomial fully present in the world?"""
        from repro.semirings.semirings import BOOLEAN

        return self.specialize(BOOLEAN, {v: bool(world.get(v, False)) for v in self.variables()})

    def drop_coefficients(self) -> "ProvenancePolynomial":
        """The B[X] image: coefficients collapsed to 1 (idempotent +)."""
        return ProvenancePolynomial.from_terms(
            (monomial, 1) for monomial, _ in self.terms
        )

    def drop_exponents(self) -> "ProvenancePolynomial":
        """The Trio(X)-style image: exponents collapsed to 1 (idempotent *)."""
        return ProvenancePolynomial.from_terms(
            (Monomial.of(monomial.variables()), coefficient)
            for monomial, coefficient in self.terms
        )

    def why(self) -> frozenset:
        """The Why(X) image: the set of variable sets of the monomials."""
        return frozenset(monomial.variables() for monomial, _ in self.terms)

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for monomial, coefficient in self.terms:
            if coefficient == 1:
                parts.append(str(monomial))
            else:
                parts.append(f"{coefficient}*{monomial}")
        return " + ".join(parts)
