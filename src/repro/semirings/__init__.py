"""Semiring provenance (Green, Karvounarakis, Tannen; used by [2] and Section 3).

The lineage studied in the paper is the Boolean (PosBool[X]) specialisation of
semiring provenance; the provenance-circuit construction of [2] works for any
commutative semiring.  This subpackage provides:

* a small algebra of commutative (monoid/semiring) structures
  (:mod:`repro.semirings.semirings`): Boolean, counting, tropical,
  security/access-control, Viterbi, Why(X), and the free polynomial semiring
  N[X];
* evaluation of monotone lineage circuits and monotone DNF lineages in an
  arbitrary commutative semiring (:mod:`repro.semirings.evaluation`);
* provenance polynomials as explicit multisets of monomials
  (:mod:`repro.semirings.polynomials`), with specialisation homomorphisms into
  any other semiring (the universality property of N[X]).
"""

from repro.semirings.evaluation import (
    evaluate_circuit_in_semiring,
    evaluate_lineage_in_semiring,
    query_provenance_polynomial,
    query_semiring_annotation,
)
from repro.semirings.polynomials import Monomial, ProvenancePolynomial
from repro.semirings.semirings import (
    BOOLEAN,
    COUNTING,
    SECURITY,
    TROPICAL,
    VITERBI,
    WHY,
    Semiring,
    polynomial_semiring,
    why_provenance,
)

__all__ = [
    "BOOLEAN",
    "COUNTING",
    "Monomial",
    "ProvenancePolynomial",
    "SECURITY",
    "Semiring",
    "TROPICAL",
    "VITERBI",
    "WHY",
    "evaluate_circuit_in_semiring",
    "evaluate_lineage_in_semiring",
    "polynomial_semiring",
    "query_provenance_polynomial",
    "query_semiring_annotation",
    "why_provenance",
]
