"""Evaluating lineages and queries in arbitrary commutative semirings.

The provenance-circuit construction of [2] (Theorem 3.2) computes, for a
monotone query, a *monotone* circuit whose gates can be re-interpreted in any
commutative semiring: OR becomes the semiring +, AND becomes the semiring *,
and each fact variable is replaced by the fact's annotation.  This module
provides that re-interpretation for the monotone lineage representations of
the library, plus the direct (match-based) N[X] provenance of UCQs.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.booleans.circuit import BooleanCircuit, GateKind
from repro.data.instance import Fact, Instance
from repro.errors import LineageError
from repro.semirings.polynomials import Monomial, ProvenancePolynomial
from repro.semirings.semirings import Semiring


def evaluate_circuit_in_semiring(
    circuit: BooleanCircuit,
    semiring: Semiring,
    annotations: Mapping[Hashable, object],
) -> object:
    """Evaluate a monotone circuit with OR as + and AND as *.

    ``annotations`` maps each circuit variable (a fact) to its semiring
    annotation.  NOT gates are rejected: semiring provenance is only defined
    for monotone queries (Definition 6.1 / [29]).
    """
    if circuit.output is None:
        raise LineageError("circuit has no output gate")
    values: dict[int, object] = {}
    for gate_id in circuit.reachable_gates():
        gate = circuit.gate(gate_id)
        if gate.kind is GateKind.NOT:
            raise LineageError("semiring evaluation requires a monotone circuit")
        if gate.kind is GateKind.VAR:
            if gate.payload not in annotations:
                raise LineageError(f"missing annotation for variable {gate.payload!r}")
            values[gate_id] = annotations[gate.payload]
        elif gate.kind is GateKind.CONST:
            values[gate_id] = semiring.one if gate.payload else semiring.zero
        elif gate.kind is GateKind.AND:
            values[gate_id] = semiring.product(values[i] for i in gate.inputs)
        else:  # OR
            values[gate_id] = semiring.sum(values[i] for i in gate.inputs)
    return values[circuit.output]


def evaluate_lineage_in_semiring(
    lineage,
    semiring: Semiring,
    annotations: Mapping[Fact, object],
) -> object:
    """Evaluate a monotone DNF lineage: sum over clauses of the product of annotations."""
    return semiring.sum(
        semiring.product(annotations[fact] for fact in clause)
        for clause in lineage.clauses
    )


def query_provenance_polynomial(query, instance: Instance) -> ProvenancePolynomial:
    """The N[X] provenance of a UCQ (or CQ) on an instance.

    One monomial per homomorphism from some disjunct to the instance, the
    monomial being the multiset of facts used by the homomorphism (an atom
    mapped onto a fact twice contributes exponent 2); identical monomials from
    different homomorphisms accumulate in the coefficient.  This follows the
    standard semantics of provenance polynomials for set-semantics UCQs.

    Disequality atoms are supported (they filter homomorphisms but contribute
    no variables); this matches the Boolean lineage used elsewhere in the
    library, of which this polynomial is the N[X] refinement.
    """
    from repro.queries.matching import cq_homomorphisms
    from repro.queries.ucq import as_ucq

    terms: list[tuple[Monomial, int]] = []
    for disjunct in as_ucq(query).disjuncts:
        for assignment in cq_homomorphisms(disjunct, instance):
            used_facts = [
                Fact(atom.relation, tuple(assignment[argument] for argument in atom.arguments))
                for atom in disjunct.atoms
            ]
            terms.append((Monomial.of(used_facts), 1))
    return ProvenancePolynomial.from_terms(terms)


def query_semiring_annotation(
    query,
    instance: Instance,
    semiring: Semiring,
    annotations: Mapping[Fact, object],
) -> object:
    """The K-annotation of a UCQ on a K-annotated instance.

    Facts missing from ``annotations`` are treated as annotated with the
    semiring's 1 (present with no particular information).
    """
    polynomial = query_provenance_polynomial(query, instance)
    valuation = {fact: annotations.get(fact, semiring.one) for fact in instance.facts}
    return polynomial.specialize(semiring, valuation)
